// Command preflight is the generic file-level tool: it generates,
// damages, checks and repairs FITS files on disk, exercising the full
// inject -> sanity-check -> preprocess flow on real bytes.
//
// Subcommands:
//
//	preflight gen -out file.fits [-width N -height N -seed N]
//	preflight inject -in a.fits -out b.fits [-gamma0 P] [-header-only]
//	preflight check -in file.fits [-expect WxH] [-repair -out fixed.fits]
//	preflight clean -in a.fits -out b.fits [-sensitivity L]
//	preflight pipeline -in baselinedir -out image.fits [-workers N -tile N -sensitivity L]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"spaceproc"
	"spaceproc/internal/cmdutil"
)

func main() {
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		spaceproc.NewStructuredLogger(os.Stderr, slog.LevelInfo).
			Error("run failed", "cmd", "preflight", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: preflight <gen|inject|check|clean> [flags]")
	}
	switch args[0] {
	case "-version", "version":
		cmdutil.PrintVersion(out, "preflight")
		return nil
	case "gen":
		return genCmd(args[1:], out)
	case "inject":
		return injectCmd(args[1:], out)
	case "check":
		return checkCmd(args[1:], out)
	case "clean":
		return cleanCmd(args[1:], out)
	case "pipeline":
		return pipelineCmd(ctx, args[1:], out)
	case "sum":
		return sumCmd(args[1:], out)
	case "verify":
		return verifyCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func sumCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sum", flag.ContinueOnError)
	in := fs.String("in", "", "input FITS path")
	out := fs.String("out", "", "output FITS path with DATASUM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("sum: -in and -out are required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	withSum, err := spaceproc.WithFITSDataSum(raw)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, withSum, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s with DATASUM\n", *out)
	return nil
}

func verifyCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	in := fs.String("in", "", "input FITS path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("verify: -in is required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	ok, err := spaceproc.VerifyFITSDataSum(raw)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintf(w, "%s: DATASUM MISMATCH (data unit damaged)\n", *in)
		return errors.New("verify: checksum mismatch")
	}
	fmt.Fprintf(w, "%s: DATASUM ok\n", *in)
	return nil
}

func genCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "", "output FITS path")
	width := fs.Int("width", spaceproc.TileSize, "image width")
	height := fs.Int("height", spaceproc.TileSize, "image height")
	seed := fs.Uint64("seed", 1, "synthesis seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("gen: -out is required")
	}
	ser, err := spaceproc.GaussianStack(spaceproc.SeriesConfig{N: 1, Initial: 24000, Sigma: 0},
		*width, *height, 6000, spaceproc.NewRNG(*seed))
	if err != nil {
		return err
	}
	raw := spaceproc.EncodeFITSImage(ser.Frames[0])
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d bytes, %dx%d)\n", *out, len(raw), *width, *height)
	return nil
}

func injectCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("inject", flag.ContinueOnError)
	in := fs.String("in", "", "input FITS path")
	out := fs.String("out", "", "output FITS path")
	gamma0 := fs.Float64("gamma0", 0.0005, "bit-flip probability")
	headerOnly := fs.Bool("header-only", false, "damage only the first header block")
	seed := fs.Uint64("seed", 2, "injection seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("inject: -in and -out are required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	region := raw
	if *headerOnly {
		if len(raw) < 2880 {
			return errors.New("inject: file shorter than one FITS block")
		}
		region = raw[:2880]
	}
	flips := spaceproc.Uncorrelated{Gamma0: *gamma0}.InjectBytes(region, spaceproc.NewRNG(*seed))
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "injected %d bit flips into %s -> %s\n", flips, *in, *out)
	return nil
}

func parseExpect(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "x")
	axes := make([]int, 0, len(parts))
	for _, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -expect %q", s)
		}
		axes = append(axes, v)
	}
	return axes, nil
}

func checkCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	in := fs.String("in", "", "input FITS path")
	expect := fs.String("expect", "", "expected geometry, e.g. 128x128")
	repair := fs.Bool("repair", false, "write the repaired file")
	out := fs.String("out", "", "output path for -repair")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("check: -in is required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	axes, err := parseExpect(*expect)
	if err != nil {
		return err
	}
	var opts []spaceproc.FITSSanityOption
	if len(axes) > 0 {
		opts = append(opts, spaceproc.WithExpectedAxes(axes...))
	}
	rep, fixed := spaceproc.SanityCheckFITS(raw, opts...)
	fmt.Fprintf(w, "%s: %d issue(s), %d repaired, fatal=%v\n", *in, len(rep.Issues), rep.Repaired, rep.Fatal)
	for _, is := range rep.Issues {
		status := "flagged"
		if is.Repaired {
			status = "repaired"
		}
		fmt.Fprintf(w, "  card %3d: %-20s %s (%s)\n", is.Card, is.Kind, is.Detail, status)
	}
	if *repair {
		if *out == "" {
			return errors.New("check: -repair requires -out")
		}
		if err := os.WriteFile(*out, fixed, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote repaired file to %s\n", *out)
	}
	if rep.Fatal {
		return errors.New("header is not repairable")
	}
	return nil
}

// pipelineCmd runs a stored baseline through the worker pool: load the
// FITS stack under the sanity layer, preprocess + CR-reject + compress it
// over N pooled workers, and write the integrated image.
func pipelineCmd(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	in := fs.String("in", "", "input baseline directory (one FITS frame per readout)")
	out := fs.String("out", "", "output FITS path for the integrated image")
	workers := fs.Int("workers", 4, "worker count")
	tile := fs.Int("tile", spaceproc.TileSize, "fragment edge length")
	lambda := fs.Int("sensitivity", 80, "preprocessing sensitivity Lambda (negative disables preprocessing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("pipeline: -in and -out are required")
	}
	stack, loadRep, err := spaceproc.LoadBaseline(*in)
	if err != nil {
		return err
	}
	spaceproc.InterpolateLostFrames(stack, loadRep.Unrecoverable)
	fmt.Fprintf(w, "loaded %s: %d frames, %d header issue(s), %d repaired, %d frame(s) interpolated\n",
		*in, stack.Len(), loadRep.HeaderIssues, loadRep.HeaderRepairs, len(loadRep.Unrecoverable))

	var pre spaceproc.SeriesPreprocessor
	if *lambda >= 0 {
		a, err := spaceproc.NewAlgoNGST(spaceproc.NGSTConfig{Upsilon: 4, Sensitivity: *lambda})
		if err != nil {
			return err
		}
		pre = a
	}
	pool, err := spaceproc.NewWorkerPool(spaceproc.WithPoolTileSize(*tile))
	if err != nil {
		return err
	}
	defer pool.Close()
	for i := 0; i < *workers; i++ {
		lw, err := spaceproc.NewLocalWorker(pre, spaceproc.DefaultCRConfig())
		if err != nil {
			return err
		}
		pool.AddWorker(lw)
	}
	res := <-pool.Submit(ctx, stack)
	if res.Err != nil {
		return res.Err
	}
	if err := os.WriteFile(*out, spaceproc.EncodeFITSImage(res.Image), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline: %d cosmic-ray pixels hit, %d steps removed, %d pixels corrected\n",
		res.Stats.Hits, res.Stats.Steps, res.PreStats.Corrected)
	fmt.Fprintf(w, "wrote %s (%d bytes; downlink %d bytes, ratio %.2f:1)\n",
		*out, len(spaceproc.EncodeFITSImage(res.Image)), len(res.Compressed), res.CompressionRatio())
	return nil
}

func cleanCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clean", flag.ContinueOnError)
	in := fs.String("in", "", "input FITS path")
	out := fs.String("out", "", "output FITS path")
	lambda := fs.Int("sensitivity", 80, "preprocessing sensitivity Lambda")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("clean: -in and -out are required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	rep, fixed := spaceproc.SanityCheckFITS(raw)
	if rep.Fatal {
		return errors.New("clean: header is not repairable; run check first")
	}
	f, err := spaceproc.DecodeFITS(fixed)
	if err != nil {
		return err
	}
	im, err := f.Image()
	if err != nil {
		return err
	}
	// A single frame has no temporal redundancy; preprocess each row as a
	// spatial series (the OTIS-style adaptation for 2-D data).
	pre, err := spaceproc.NewAlgoNGST(spaceproc.NGSTConfig{Upsilon: 4, Sensitivity: *lambda})
	if err != nil {
		return err
	}
	for y := 0; y < im.Height; y++ {
		row := spaceproc.Series(im.Pix[y*im.Width : (y+1)*im.Width])
		pre.ProcessSeries(row)
	}
	if err := os.WriteFile(*out, spaceproc.EncodeFITSImage(im), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "cleaned %s -> %s (%d header repairs)\n", *in, *out, rep.Repaired)
	return nil
}
