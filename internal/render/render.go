// Package render writes data products as binary PGM (P5) images, the
// zero-dependency way to look at them. cmd/experiments uses it to emit the
// paper's Figure 8 gallery (the Blob/Stripe/Spots morphologies) and
// integrated NGST frames.
package render

import (
	"fmt"
	"io"
	"math"

	"spaceproc/internal/dataset"
)

// GrayPGM writes a row-major float64 field as an 8-bit PGM, linearly
// scaled between the field's min and max (a constant field renders
// mid-gray).
func GrayPGM(w io.Writer, field []float64, width, height int) error {
	if width <= 0 || height <= 0 || len(field) != width*height {
		return fmt.Errorf("render: field of %d values is not %dx%d", len(field), width, height)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range field {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // all non-finite
		lo, hi = 0, 0
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	row := make([]byte, width)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := field[y*width+x]
			switch {
			case math.IsNaN(v) || math.IsInf(v, 0):
				row[x] = 0
			case scale == 0:
				row[x] = 128
			default:
				row[x] = byte(math.Round((v - lo) * scale))
			}
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ImagePGM writes a 16-bit image.
func ImagePGM(w io.Writer, im *dataset.Image) error {
	field := make([]float64, len(im.Pix))
	for i, p := range im.Pix {
		field[i] = float64(p)
	}
	return GrayPGM(w, field, im.Width, im.Height)
}

// BandPGM writes one spectral plane of a cube.
func BandPGM(w io.Writer, c *dataset.Cube, band int) error {
	if band < 0 || band >= c.Bands {
		return fmt.Errorf("render: band %d outside [0,%d)", band, c.Bands)
	}
	plane := c.Band(band)
	field := make([]float64, len(plane))
	for i, p := range plane {
		field[i] = float64(p)
	}
	return GrayPGM(w, field, c.Width, c.Height)
}
