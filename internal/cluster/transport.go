package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"spaceproc/internal/dataset"
	"spaceproc/internal/telemetry"
)

// The TCP transport stands in for the Myrinet interconnect of the Figure 1
// architecture: each slave node runs a Server wrapping a Worker; the master
// holds one RemoteWorker per slave. Frames are gob-encoded tiles and
// results over a persistent connection, one request in flight per worker
// (matching the master/slave dispatch of the paper's pipeline). Context
// deadlines propagate: the master-side proxy applies them to the socket and
// ships them in the request so the slave enforces the same cut-off.

// request is the wire format of one dispatch.
type request struct {
	Tile dataset.Tile
	// Deadline is the absolute processing cut-off (zero when the caller's
	// context carries none); the serving node derives its own context from
	// it, so deadlines survive the wire.
	Deadline time.Time
	// Trace is the dispatching master's trace position (zero when the
	// master is not tracing). The serving node parents its serve span
	// under it, so the tile's story stays one causal chain across the
	// socket.
	Trace telemetry.TraceContext
}

// response is the wire format of one result.
type response struct {
	Result TileResult
	Err    string
	// Spans carries the serving node's completed trace events back to the
	// master, which folds them into its tracer — the single artifact a
	// ground operator loads in chrome://tracing.
	Spans []telemetry.TraceEvent
}

// Server exposes a Worker over TCP. With WithServerTelemetry it records
// request counters and serve latency; with WithSidecar it additionally
// runs an HTTP observability endpoint (/metrics, /healthz, /debug/pprof/)
// next to the worker port.
type Server struct {
	worker      Worker
	tel         *telemetry.Registry
	log         *slog.Logger
	sidecarAddr string

	mu       sync.Mutex
	listener net.Listener
	sidecar  *telemetry.Server
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	proc     string

	requests *telemetry.Counter
	errored  *telemetry.Counter
	serveLat *telemetry.Histogram
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerTelemetry wires the server's request counters and latency
// histogram into reg.
func WithServerTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.tel = reg }
}

// WithSidecar serves the observability HTTP surface on addr (for example
// "127.0.0.1:0") while the worker listener is up. It implies a registry:
// when none was supplied via WithServerTelemetry, the server creates its
// own.
func WithSidecar(addr string) ServerOption {
	return func(s *Server) { s.sidecarAddr = addr }
}

// WithServerLogger routes the server's WARN-level request forensics
// (failed tiles, expired deadlines) into l.
func WithServerLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// NewServer returns a server around the worker.
func NewServer(w Worker, opts ...ServerOption) *Server {
	s := &Server{worker: w, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	if s.sidecarAddr != "" && s.tel == nil {
		s.tel = telemetry.NewRegistry()
	}
	if s.tel != nil {
		s.requests = s.tel.Counter("server_requests_total")
		s.errored = s.tel.Counter("server_errors_total")
		s.serveLat = s.tel.Histogram("server_process")
	}
	return s
}

// Telemetry returns the server's registry (nil unless telemetry or a
// sidecar was configured).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines
// until Close. When a sidecar address is configured, the HTTP endpoint
// starts here too (see SidecarAddr).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("cluster: server already closed")
	}
	s.listener = ln
	s.proc = "worker " + ln.Addr().String()
	if s.sidecarAddr != "" && s.sidecar == nil {
		sc, err := telemetry.NewServer(s.tel, s.sidecarAddr)
		if err != nil {
			s.mu.Unlock()
			ln.Close()
			return "", err
		}
		s.sidecar = sc
	}
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func(conn net.Conn) {
				defer s.wg.Done()
				s.serve(conn)
			}(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// SidecarAddr returns the bound observability address, or "" when no
// sidecar is configured or Listen has not run yet.
func (s *Server) SidecarAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sidecar == nil {
		return ""
	}
	return s.sidecar.Addr()
}

// serve answers requests on one connection until it drops.
func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		res, spans, err := s.process(req)
		resp.Spans = spans
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Result = res
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// process runs one request under the deadline it carried, recording server
// telemetry when configured. When the request carries a trace, the serve
// span continues it — same trace ID, parented under the master's dispatch
// — and rides back in the response for the master's artifact.
func (s *Server) process(req request) (TileResult, []telemetry.TraceEvent, error) {
	ctx := context.Background()
	if !req.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
	}
	var serveTC telemetry.TraceContext
	if req.Trace.Valid() {
		serveTC = telemetry.TraceContext{TraceID: req.Trace.TraceID, SpanID: telemetry.NewSpanID()}
		ctx = telemetry.ContextWithTrace(ctx, s.tel.Tracer(), serveTC)
	}
	start := time.Now()
	if s.tel != nil {
		s.requests.Inc()
	}
	res, err := s.worker.ProcessTile(ctx, req.Tile)
	d := time.Since(start)
	label := fmt.Sprintf("tile_%d", req.Tile.Index)
	if s.tel != nil {
		s.serveLat.Observe(d)
		s.tel.RecordSpan("serve", label, start, d)
		if err != nil {
			s.errored.Inc()
		}
	}
	var spans []telemetry.TraceEvent
	if req.Trace.Valid() {
		s.mu.Lock()
		proc := s.proc
		s.mu.Unlock()
		ev := telemetry.TraceEvent{
			TraceID: serveTC.TraceID, SpanID: serveTC.SpanID, ParentID: req.Trace.SpanID,
			Stage: "serve", Label: label, Proc: proc,
			Start: start, Dur: d,
		}
		if err != nil {
			ev.Args = map[string]string{"error": err.Error()}
		}
		s.tel.Tracer().Record(ev)
		spans = append(spans, ev)
	}
	if err != nil && s.log != nil {
		s.log.LogAttrs(ctx, slog.LevelWarn, "serve failed",
			slog.Int("tile", req.Tile.Index),
			slog.String("error", err.Error()))
	}
	return res, spans, err
}

// Close stops the server (worker listener and sidecar) and waits for
// in-flight requests.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	sidecar := s.sidecar
	s.sidecar = nil
	s.mu.Unlock()
	if sidecar != nil {
		sidecar.Close()
	}
	s.wg.Wait()
}

// Reconnect defaults for RemoteWorker; override with WithDialBackoff.
const (
	DefaultDialAttempts = 3
	DefaultDialBackoff  = 20 * time.Millisecond
)

// RemoteWorker is the master-side proxy for a slave node. A lost
// connection is re-dialed with bounded exponential backoff on the next
// call, so a slave that restarts (same address, new process) rejoins
// without the pool ever dropping the proxy. Mid-exchange transport errors
// still surface immediately — the call stays at-most-once and the pool's
// retry/breaker logic owns redelivery.
type RemoteWorker struct {
	addr         string
	dialAttempts int
	dialBackoff  time.Duration

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

var _ Worker = (*RemoteWorker)(nil)

// DialOption configures a RemoteWorker.
type DialOption func(*RemoteWorker)

// WithDialBackoff tunes the reconnect loop: attempts dials per connect,
// sleeping base (doubling each attempt) between them.
func WithDialBackoff(attempts int, base time.Duration) DialOption {
	return func(w *RemoteWorker) {
		w.dialAttempts = attempts
		w.dialBackoff = base
	}
}

// Dial connects to a slave served by Server.
func Dial(addr string, opts ...DialOption) (*RemoteWorker, error) {
	w := &RemoteWorker{addr: addr, dialAttempts: DefaultDialAttempts, dialBackoff: DefaultDialBackoff}
	for _, o := range opts {
		o(w)
	}
	if w.dialAttempts <= 0 {
		w.dialAttempts = 1
	}
	if w.dialBackoff <= 0 {
		w.dialBackoff = DefaultDialBackoff
	}
	if err := w.connect(context.Background()); err != nil {
		return nil, err
	}
	return w, nil
}

// connect dials the slave with bounded exponential backoff, so a worker
// that is mid-restart when the proxy needs it gets a short grace window
// instead of an instant failure. Callers hold w.mu.
func (w *RemoteWorker) connect(ctx context.Context) error {
	backoff := w.dialBackoff
	var lastErr error
	for attempt := 0; attempt < w.dialAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", w.addr)
		if err == nil {
			w.conn = conn
			w.enc = gob.NewEncoder(conn)
			w.dec = gob.NewDecoder(conn)
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("cluster: dial %s (%d attempts): %w", w.addr, w.dialAttempts, lastErr)
}

// ProcessTile implements Worker by round-tripping the tile to the slave.
// The context's deadline is applied to the socket and shipped with the
// request; cancellation unblocks the in-flight round-trip by expiring the
// socket. A transport error tears down the connection (the master's retry
// logic reassigns the tile); the next call re-dials.
func (w *RemoteWorker) ProcessTile(ctx context.Context, t dataset.Tile) (TileResult, error) {
	if err := ctx.Err(); err != nil {
		return TileResult{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		if err := w.connect(ctx); err != nil {
			return TileResult{}, err
		}
	}
	conn := w.conn
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Time{})
	}
	// On cancellation, expire the socket so the blocked gob round-trip
	// returns instead of hanging until the slave answers.
	stopWatch := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0))
	})
	defer stopWatch()

	req := request{Tile: t}
	if hasDeadline {
		req.Deadline = deadline
	}
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		req.Trace = tc
	}
	if err := w.enc.Encode(&req); err != nil {
		w.teardown()
		return TileResult{}, transportErr(ctx, "send", t.Index, err)
	}
	var resp response
	if err := w.dec.Decode(&resp); err != nil {
		w.teardown()
		return TileResult{}, transportErr(ctx, "receive", t.Index, err)
	}
	// Fold the slave's spans into the dispatching side's tracer before
	// surfacing any remote error: a failed serve still leaves its span.
	if tr := telemetry.TracerFromContext(ctx); tr != nil {
		for _, ev := range resp.Spans {
			tr.Record(ev)
		}
	}
	if resp.Err != "" {
		return TileResult{}, fmt.Errorf("cluster: remote: %s", resp.Err)
	}
	return resp.Result, nil
}

// transportErr attributes an I/O failure to the context when it was the
// cause (cancellation or deadline), so callers can distinguish a dead
// worker from an abandoned run.
func transportErr(ctx context.Context, op string, tile int, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("cluster: %s tile %d: %w", op, tile, ctxErr)
	}
	return fmt.Errorf("cluster: %s tile %d: %w", op, tile, err)
}

func (w *RemoteWorker) teardown() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
		w.enc, w.dec = nil, nil
	}
}

// Close drops the connection.
func (w *RemoteWorker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.teardown()
}
