package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"spaceproc/internal/crreject"
	"spaceproc/internal/telemetry"
)

// TestMasterTelemetryCountsTiles checks that a clean instrumented run
// records every pipeline stage and per-worker latency.
func TestMasterTelemetryCountsTiles(t *testing.T) {
	sc := testScene(t, 21)
	reg := telemetry.NewRegistry()
	m, err := NewMaster(localWorkers(t, 2, nil), WithTileSize(32), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(sc.Observed); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	const tiles = 4 // 64x64 at 32-pixel tiles
	if got := snap.Counters["pipeline_tiles_total"]; got != tiles {
		t.Fatalf("tiles_total = %d, want %d", got, tiles)
	}
	if got := snap.Counters["pipeline_tiles_completed_total"]; got != tiles {
		t.Fatalf("tiles_completed = %d, want %d", got, tiles)
	}
	for _, stage := range []string{StageFragment, StageDispatch, StageProcess, StageBlit, StageCompress, StageRun} {
		if snap.SpanCounts[stage] == 0 {
			t.Fatalf("no spans recorded for stage %q: %v", stage, snap.SpanCounts)
		}
	}
	if snap.Gauges["pipeline_workers"] != 2 {
		t.Fatalf("pipeline_workers = %v, want 2", snap.Gauges["pipeline_workers"])
	}
	var perWorker int64
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "pipeline_worker_") {
			perWorker += h.Count
		}
	}
	if perWorker != tiles {
		t.Fatalf("per-worker histogram counts sum to %d, want %d", perWorker, tiles)
	}
	if snap.Histograms["pipeline_tile_process"].Count != tiles {
		t.Fatalf("tile_process count = %d, want %d", snap.Histograms["pipeline_tile_process"].Count, tiles)
	}
}

// TestMasterTelemetryRetries checks that the retry counter and the retry
// span trace both agree with the Result's own count.
func TestMasterTelemetryRetries(t *testing.T) {
	sc := testScene(t, 22)
	good, err := NewLocalWorker(nil, crreject.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyWorker{inner: good, failures: 2}
	reg := telemetry.NewRegistry()
	m, err := NewMaster([]Worker{flaky}, WithTileSize(32), WithRetries(3), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(sc.Observed)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pipeline_tile_retries_total"]; got != int64(res.Retries) {
		t.Fatalf("retry counter = %d, Result.Retries = %d", got, res.Retries)
	}
	if got := snap.SpanCounts[StageRetry]; got != int64(res.Retries) {
		t.Fatalf("retry spans = %d, Result.Retries = %d", got, res.Retries)
	}
	if res.Retries != 2 {
		t.Fatalf("retries = %d, want 2", res.Retries)
	}
	if snap.Counters["pipeline_tile_failures_total"] != 0 {
		t.Fatalf("failures counter = %d, want 0", snap.Counters["pipeline_tile_failures_total"])
	}
}

// TestMasterTelemetryFailures checks the permanent-failure path: the
// failure counter fires and the run errors.
func TestMasterTelemetryFailures(t *testing.T) {
	sc := testScene(t, 23)
	alwaysBad := &flakyWorker{inner: nil, failures: 1 << 30}
	reg := telemetry.NewRegistry()
	m, err := NewMaster([]Worker{alwaysBad}, WithTileSize(32), WithRetries(1), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(sc.Observed); err == nil {
		t.Fatal("run should fail when every tile exhausts its retries")
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline_tile_failures_total"] == 0 {
		t.Fatal("failure counter not incremented")
	}
}

// TestRunReportsEveryFailure checks that a run with several permanently
// failed tiles surfaces all of them, not just the first drained error.
func TestRunReportsEveryFailure(t *testing.T) {
	sc := testScene(t, 25)
	alwaysBad := &flakyWorker{inner: nil, failures: 1 << 30}
	m, err := NewMaster([]Worker{alwaysBad}, WithTileSize(32), WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(sc.Observed)
	if err == nil {
		t.Fatal("run should fail")
	}
	// 64x64 at 32-pixel tiles: all four tiles fail and must all be named.
	if got := strings.Count(err.Error(), "failed permanently"); got != 4 {
		t.Fatalf("error names %d failed tiles, want 4:\n%v", got, err)
	}
}

// TestServerSidecarServesObservability spins up a TCP worker with the HTTP
// sidecar and checks /metrics, /healthz and /debug/pprof/ respond.
func TestServerSidecarServesObservability(t *testing.T) {
	sc := testScene(t, 24)
	lw, err := NewLocalWorker(nil, crreject.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lw, WithSidecar("127.0.0.1:0"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Telemetry() == nil {
		t.Fatal("sidecar should imply a registry")
	}

	rw, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	m, err := NewMaster([]Worker{rw}, WithTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(sc.Observed); err != nil {
		t.Fatal(err)
	}

	scAddr := srv.SidecarAddr()
	if scAddr == "" {
		t.Fatal("sidecar address empty after Listen")
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + scAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "counter server_requests_total 4") {
		t.Fatalf("/metrics missing served-request count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "spans serve 4") {
		t.Fatalf("/metrics missing serve spans:\n%s", metrics)
	}
	if body := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz body %q", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ unexpected body %q", body)
	}
}
