package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("client-%d/dataset-%d", i%997, i)
	}
	return out
}

// TestLookupDeterministic: same seed and members route every key the
// same way regardless of construction order or a rebuilt ring.
func TestLookupDeterministic(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}
	a := New(64, 42)
	a.Add(members...)
	b := New(64, 42)
	for i := len(members) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(members[i])
	}
	for _, k := range keys(2000) {
		ma, _ := a.Lookup(k)
		mb, _ := b.Lookup(k)
		if ma != mb {
			t.Fatalf("key %q: insertion order changed routing: %q vs %q", k, ma, mb)
		}
	}
	// A different seed must produce a different placement overall.
	c := New(64, 43)
	c.Add(members...)
	same := 0
	ks := keys(2000)
	for _, k := range ks {
		ma, _ := a.Lookup(k)
		mc, _ := c.Lookup(k)
		if ma == mc {
			same++
		}
	}
	if same == len(ks) {
		t.Fatal("changing the seed left every key on the same member")
	}
}

// TestDistributionBalance: with enough virtual nodes, keys spread close
// to uniformly. A chi-squared-style bound: sum((obs-exp)^2/exp) over 8
// members for 20k keys stays far below a generous threshold, and no
// member is twice or half its fair share.
func TestDistributionBalance(t *testing.T) {
	const members, nkeys = 8, 20000
	r := New(128, 7)
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	counts := make(map[string]int)
	for _, k := range keys(nkeys) {
		m, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		counts[m]++
	}
	exp := float64(nkeys) / members
	chi2 := 0.0
	for i := 0; i < members; i++ {
		obs := float64(counts[fmt.Sprintf("node-%d", i)])
		chi2 += (obs - exp) * (obs - exp) / exp
		if obs < exp/2 || obs > exp*2 {
			t.Fatalf("node-%d got %.0f keys, fair share %.0f — ring badly unbalanced", i, obs, exp)
		}
	}
	// Under consistent hashing the member shares themselves vary with the
	// arc lengths, inflating chi2 over the plain multinomial ~(m-1) to
	// roughly (m-1)*(1 + nkeys/(m*vnodes)) ≈ 143 here. The fixed seed
	// makes the statistic deterministic; 2x that expectation guards the
	// balance property without depending on one lucky seed.
	if bound := 2 * (members - 1) * (1 + float64(nkeys)/(members*128)); chi2 > bound {
		t.Fatalf("chi-squared %.1f exceeds balance bound %.1f", chi2, bound)
	}
}

// TestMinimalRemapping: removing one of N members moves only that
// member's keys (~1/N of the total); every other key keeps its node.
func TestMinimalRemapping(t *testing.T) {
	const members, nkeys = 8, 20000
	r := New(128, 7)
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	ks := keys(nkeys)
	before := make(map[string]string, nkeys)
	for _, k := range ks {
		before[k], _ = r.Lookup(k)
	}
	const victim = "node-3"
	if !r.Remove(victim) {
		t.Fatal("remove reported member absent")
	}
	if r.Remove(victim) {
		t.Fatal("second remove must report absent")
	}
	moved := 0
	for _, k := range ks {
		after, _ := r.Lookup(k)
		if before[k] == victim {
			if after == victim {
				t.Fatalf("key %q still routes to removed member", k)
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved from %q to %q though its member survived", k, before[k], after)
		}
	}
	frac := float64(moved) / nkeys
	if frac < 1.0/(2*members) || frac > 2.0/members {
		t.Fatalf("removal moved %.1f%% of keys, expected ~%.1f%%", frac*100, 100.0/members)
	}
}

// TestSequence: failover order starts at the key's owner and covers
// every member exactly once.
func TestSequence(t *testing.T) {
	r := New(32, 11)
	r.Add("a", "b", "c", "d")
	for _, k := range keys(500) {
		owner, _ := r.Lookup(k)
		seq := r.Sequence(k)
		if len(seq) != 4 {
			t.Fatalf("sequence for %q has %d members, want 4", k, len(seq))
		}
		if seq[0] != owner {
			t.Fatalf("sequence for %q starts at %q, Lookup says %q", k, seq[0], owner)
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence for %q repeats %q", k, m)
			}
			seen[m] = true
		}
	}
}

// TestEmptyAndSingle: empty-ring lookups miss; a lone member owns
// everything; Add is idempotent.
func TestEmptyAndSingle(t *testing.T) {
	r := New(0, 1) // 0 selects DefaultVirtualNodes
	if _, ok := r.Lookup("anything"); ok {
		t.Fatal("empty ring must miss")
	}
	if s := r.Sequence("anything"); s != nil {
		t.Fatalf("empty ring sequence = %v", s)
	}
	if r.Remove("ghost") {
		t.Fatal("removing an absent member must report false")
	}
	r.Add("solo")
	r.Add("solo")
	if r.Len() != 1 {
		t.Fatalf("len = %d after duplicate add", r.Len())
	}
	for _, k := range keys(100) {
		m, ok := r.Lookup(k)
		if !ok || m != "solo" {
			t.Fatalf("lone member must own every key, got %q ok=%v", m, ok)
		}
	}
	if got := r.Members(); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("members = %v", got)
	}
}
