// Closed-loop example: instead of predicting the radiation environment
// from an orbit model, estimate the operating fault rate from the
// preprocessing telemetry itself — corrected bits per processed bit — and
// feed it back into the calibrated sensitivity table for the next
// baseline. The controller rides the rate up into a storm and back down
// without any external knowledge.
//
//	go run ./examples/closed_loop
package main

import (
	"fmt"
	"log"

	"spaceproc"
)

func main() {
	cal, err := spaceproc.Calibrate(spaceproc.DefaultCalibrationConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	loop := spaceproc.NewSensitivityLoop(cal, 0.001)

	// A storm profile: quiet, rising, peak, decaying, quiet.
	profile := []float64{0.001, 0.001, 0.01, 0.05, 0.05, 0.01, 0.001, 0.001}
	fmt.Printf("%4s  %9s  %4s  %10s  %10s\n", "step", "true G0", "L", "est. G0", "Psi")
	for step, gamma0 := range profile {
		lambda := loop.Sensitivity()
		pre, err := spaceproc.NewAlgoNGST(spaceproc.NGSTConfig{Upsilon: 4, Sensitivity: lambda})
		if err != nil {
			log.Fatal(err)
		}

		// One "baseline" of 256 series at the current true rate.
		var stats spaceproc.VoteStats
		var psiSum float64
		const series = 256
		for i := uint64(0); i < series; i++ {
			stream := uint64(step)*1000 + i
			ideal, err := spaceproc.GaussianSeries(spaceproc.SeriesConfig{
				N: spaceproc.BaselineReadouts, Initial: 27000, Sigma: 100,
			}, spaceproc.NewRNGStream(10, stream))
			if err != nil {
				log.Fatal(err)
			}
			damaged := ideal.Clone()
			spaceproc.Uncorrelated{Gamma0: gamma0}.InjectSeries(damaged, spaceproc.NewRNGStream(20, stream))
			pre.ProcessSeriesStats(damaged, &stats)
			psiSum += spaceproc.SeriesError(damaged, ideal)
		}

		fmt.Printf("%4d  %9.4f  %4d  %10.5f  %10.6f\n",
			step, gamma0, lambda, spaceproc.EstimateFaultRate(stats, spaceproc.BaselineReadouts), psiSum/series)
		loop.Observe(stats, spaceproc.BaselineReadouts)
	}
}
