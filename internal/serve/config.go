package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"spaceproc/internal/serve/ring"
	"spaceproc/internal/telemetry"
)

// Fleet and probe defaults; override via Config or the corresponding
// Option.
const (
	// DefaultProbeInterval is the health-probe period for fleet members.
	DefaultProbeInterval = 250 * time.Millisecond
	// DefaultProbeFailures trips a node's circuit after this many
	// consecutive probe or forward failures.
	DefaultProbeFailures = 3
	// DefaultProbeBackoff is the first quarantine after a trip; it doubles
	// per re-trip up to DefaultProbeBackoffMax (the pool's breaker idiom).
	DefaultProbeBackoff    = 250 * time.Millisecond
	DefaultProbeBackoffMax = 5 * time.Second
)

// Node is one fleet member: the serve address requests forward to, and
// optionally the telemetry sidecar address whose /healthz and /metrics
// drive liveness and queue-depth spillover. An empty Health falls back
// to TCP dial probes of Addr.
type Node struct {
	Addr   string
	Health string
}

// Config is the single construction surface for everything in this
// package: the daemon (admission fields), the client (retry/dial
// fields), and the fleet router (fleet fields). Zero fields are filled
// with defaults by the Config-taking constructors (NewServerWith,
// NewRouterWith, DialWith); the Option-taking constructors start from
// DefaultConfig and validate strictly, so an explicit zero from an
// option is an error, not silently patched.
type Config struct {
	// Admission (daemon and router).
	MaxInflight     int           // admitted requests across all clients
	PerClientQuota  int           // admitted requests per client ID; 0 = global limit only
	RetryAfter      time.Duration // hint carried by shed responses
	MaxRequestBytes int64         // payload bytes one header may declare
	ReceiveTimeout  time.Duration // per-frame receive bound for admitted requests
	BatchMax        int           // batch flush size; <= 1 disables batching
	BatchWindow     time.Duration // batch flush age; <= 0 disables batching

	// Durability (daemon): write-ahead request log and content-addressed
	// dedupe. Both default off — tests and embedded uses get the
	// historical stateless daemon unless they opt in.
	WALDir        string // directory for the ingest WAL; "" disables logging
	WALSync       bool   // fsync each append and commit (crash-durable, slower)
	WALChunkBytes int    // WAL payload chunk cap; 0 = store.DefaultWALChunkBytes
	DedupeCap     int    // dedupe cache entries; <= 0 disables dedupe

	// Client retry/dial policy (also the fleet's forwarding clients).
	ClientID        string
	Attempts        int           // tries per Process call
	RetryBackoff    time.Duration // first retry delay, doubling per attempt
	RetryBackoffMax time.Duration
	DialAttempts    int // dials per connect
	DialBackoff     time.Duration

	// Fleet topology and membership policy (router and fleet-aware
	// clients).
	Fleet           []Node
	VirtualNodes    int    // ring points per member; 0 = ring.DefaultVirtualNodes
	RingSeed        uint64 // placement seed; same seed + members = same routing
	ProbeInterval   time.Duration
	ProbeFailures   int           // consecutive failures that eject a node
	ProbeBackoff    time.Duration // first quarantine, doubling per re-trip
	ProbeBackoffMax time.Duration
	SpillDepth      int // node queue depth that triggers spillover; 0 disables

	// Plumbing.
	MetricPrefix string // metric name prefix: "serve" for daemons, "router" for routers
	Telemetry    *telemetry.Registry
	Logger       *slog.Logger
}

// DefaultConfig returns the daemon-shaped defaults.
func DefaultConfig() Config {
	return Config{
		MaxInflight:     DefaultMaxInflight,
		RetryAfter:      DefaultRetryAfter,
		MaxRequestBytes: DefaultMaxRequestBytes,
		ReceiveTimeout:  DefaultReceiveTimeout,
		BatchMax:        DefaultBatchMax,
		BatchWindow:     DefaultBatchWindow,
		Attempts:        DefaultAttempts,
		RetryBackoff:    DefaultRetryBackoff,
		RetryBackoffMax: DefaultRetryBackoffMax,
		DialAttempts:    DefaultClientDialAttempts,
		DialBackoff:     DefaultClientDialBackoff,
		VirtualNodes:    ring.DefaultVirtualNodes,
		ProbeInterval:   DefaultProbeInterval,
		ProbeFailures:   DefaultProbeFailures,
		ProbeBackoff:    DefaultProbeBackoff,
		ProbeBackoffMax: DefaultProbeBackoffMax,
		MetricPrefix:    "serve",
	}
}

// DefaultRouterConfig returns router-shaped defaults: router_* metrics
// and no local batching (requests forward one at a time; the daemons
// behind the ring do the batching).
func DefaultRouterConfig() Config {
	cfg := DefaultConfig()
	cfg.MetricPrefix = "router"
	cfg.BatchMax = 1
	return cfg
}

// withDefaults fills zero fields with their defaults. Negative values
// are left for validate to reject (except where a negative is the
// documented "disabled" sentinel: ProbeInterval, BatchWindow).
func (c *Config) withDefaults() {
	d := DefaultConfig()
	if c.MaxInflight == 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = d.MaxRequestBytes
	}
	if c.ReceiveTimeout == 0 {
		c.ReceiveTimeout = d.ReceiveTimeout
	}
	if c.BatchMax == 0 {
		c.BatchMax = d.BatchMax
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.Attempts == 0 {
		c.Attempts = d.Attempts
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = d.RetryBackoffMax
	}
	if c.DialAttempts == 0 {
		c.DialAttempts = d.DialAttempts
	}
	if c.DialBackoff == 0 {
		c.DialBackoff = d.DialBackoff
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = d.VirtualNodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.ProbeFailures == 0 {
		c.ProbeFailures = d.ProbeFailures
	}
	if c.ProbeBackoff == 0 {
		c.ProbeBackoff = d.ProbeBackoff
	}
	if c.ProbeBackoffMax == 0 {
		c.ProbeBackoffMax = d.ProbeBackoffMax
	}
	if c.MetricPrefix == "" {
		c.MetricPrefix = d.MetricPrefix
	}
}

// validate rejects admission configurations a Core cannot run with.
// Client and fleet fields are checked by their consumers (clients clamp,
// the fleet validates membership), matching the historical split between
// erroring servers and forgiving clients.
func (c Config) validate() error {
	if c.MaxInflight <= 0 {
		return fmt.Errorf("serve: max inflight %d must be positive", c.MaxInflight)
	}
	if c.PerClientQuota < 0 {
		return fmt.Errorf("serve: per-client quota %d must be non-negative", c.PerClientQuota)
	}
	if c.RetryAfter <= 0 {
		return fmt.Errorf("serve: retry-after hint %v must be positive", c.RetryAfter)
	}
	if c.MaxRequestBytes <= 0 {
		return fmt.Errorf("serve: request byte budget %d must be positive", c.MaxRequestBytes)
	}
	if c.ReceiveTimeout <= 0 {
		return fmt.Errorf("serve: receive timeout %v must be positive", c.ReceiveTimeout)
	}
	if c.MetricPrefix == "" {
		return errors.New("serve: metric prefix must be non-empty")
	}
	return nil
}

// clampClient normalizes the client-side fields the way DialClient
// always has: invalid values snap to sane ones instead of erroring, so a
// half-configured client still makes progress.
func (c *Config) clampClient() {
	if c.Attempts <= 0 {
		c.Attempts = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.RetryBackoffMax < c.RetryBackoff {
		c.RetryBackoffMax = c.RetryBackoff
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 1
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = DefaultClientDialBackoff
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = DefaultProbeFailures
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = DefaultProbeBackoff
	}
	if c.ProbeBackoffMax < c.ProbeBackoff {
		c.ProbeBackoffMax = c.ProbeBackoff
	}
}

// Option configures a Config before validation. One option type serves
// daemon, client, and router construction — the redesigned facade's
// single coherent surface.
type Option func(*Config)

// WithMaxInflight bounds admitted requests across all clients; further
// requests are shed with a retry-after hint.
func WithMaxInflight(n int) Option {
	return func(c *Config) { c.MaxInflight = n }
}

// WithPerClientQuota bounds admitted requests per client ID (0 defaults
// to the global limit).
func WithPerClientQuota(n int) Option {
	return func(c *Config) { c.PerClientQuota = n }
}

// WithRetryAfterHint sets the shed hint handed to rejected clients.
func WithRetryAfterHint(d time.Duration) Option {
	return func(c *Config) { c.RetryAfter = d }
}

// WithMaxRequestBytes bounds the payload one request may declare in its
// header (Frames x Width x Height pixels at 2 bytes each); larger
// requests are refused with StatusError before any payload is accepted.
func WithMaxRequestBytes(n int64) Option {
	return func(c *Config) { c.MaxRequestBytes = n }
}

// WithReceiveTimeout bounds the wait for each payload frame of an
// admitted request; a client that stalls mid-stream is disconnected and
// its admission slot released.
func WithReceiveTimeout(d time.Duration) Option {
	return func(c *Config) { c.ReceiveTimeout = d }
}

// WithBatching tunes the dynamic batcher: a batch flushes at max members
// or when its oldest member has waited window. max <= 1 or window <= 0
// disables batching.
func WithBatching(max int, window time.Duration) Option {
	return func(c *Config) {
		// An explicit zero means "disabled", not "default"; pin it below
		// zero so withDefaults cannot re-fill it.
		if max <= 0 {
			max = -1
		}
		if window <= 0 {
			window = -1
		}
		c.BatchMax = max
		c.BatchWindow = window
	}
}

// WithTelemetry wires the construct's instrumentation into reg. Daemons
// mint serve_*-prefixed series, routers router_*, clients client_*; see
// each constructor for the exact set.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Config) { c.Telemetry = reg }
}

// WithLogger routes structured forensics — INFO on lifecycle milestones,
// WARN on sheds, retries, ejections, and failed requests — into l.
func WithLogger(l *slog.Logger) Option {
	return func(c *Config) { c.Logger = l }
}

// WithMetricPrefix overrides the metric name prefix ("serve" for
// daemons, "router" for routers).
func WithMetricPrefix(p string) Option {
	return func(c *Config) { c.MetricPrefix = p }
}

// WithClientID names the client for the server's quota accounting and
// per-client telemetry; empty defaults to the connection's source host.
func WithClientID(id string) Option {
	return func(c *Config) { c.ClientID = id }
}

// WithRetryPolicy tunes Process retries: attempts tries in total, backing
// off from base (doubling per attempt, floored by the server's retry-after
// hint) up to max.
func WithRetryPolicy(attempts int, base, max time.Duration) Option {
	return func(c *Config) {
		c.Attempts = attempts
		c.RetryBackoff = base
		c.RetryBackoffMax = max
	}
}

// WithClientDialBackoff tunes the reconnect loop: attempts dials per
// connect, sleeping base (doubling each attempt) between them.
func WithClientDialBackoff(attempts int, base time.Duration) Option {
	return func(c *Config) {
		c.DialAttempts = attempts
		c.DialBackoff = base
	}
}

// WithClientTelemetry wires the client's instrumentation into reg.
//
// Deprecated: telemetry options were unified; use WithTelemetry.
func WithClientTelemetry(reg *telemetry.Registry) Option { return WithTelemetry(reg) }

// WithClientLogger routes the client's retry forensics into l.
//
// Deprecated: logger options were unified; use WithLogger.
func WithClientLogger(l *slog.Logger) Option { return WithLogger(l) }

// WithFleet sets the fleet membership for routers and fleet-aware
// clients.
func WithFleet(nodes ...Node) Option {
	return func(c *Config) { c.Fleet = append([]Node(nil), nodes...) }
}

// WithFleetAddrs is WithFleet for bare serve addresses (TCP dial
// probing, no telemetry sidecar).
func WithFleetAddrs(addrs ...string) Option {
	return func(c *Config) {
		c.Fleet = make([]Node, len(addrs))
		for i, a := range addrs {
			c.Fleet[i] = Node{Addr: a}
		}
	}
}

// WithRing tunes consistent-hash placement: vnodes virtual nodes per
// member (<= 0 selects ring.DefaultVirtualNodes) and the placement seed.
// Every router and fleet-aware client in front of the same fleet must
// agree on both for routing to be stable across processes.
func WithRing(vnodes int, seed uint64) Option {
	return func(c *Config) {
		c.VirtualNodes = vnodes
		c.RingSeed = seed
	}
}

// WithHealthProbe tunes membership probing: every interval each node is
// probed (/healthz when it has a Health address, TCP dial otherwise) and
// failures consecutive misses eject it into exponential-backoff
// quarantine with half-open readmission. interval <= 0 disables the
// background prober; forwarding failures still trip the breaker.
func WithHealthProbe(interval time.Duration, failures int) Option {
	return func(c *Config) {
		if interval <= 0 {
			interval = -1
		}
		c.ProbeInterval = interval
		if failures > 0 {
			c.ProbeFailures = failures
		}
	}
}

// WithSpillover re-routes requests away from a node whose queue depth
// (its live forwarding count, or the serve_requests_inflight gauge its
// probes report) has reached depth, onto the next ring successor. depth
// <= 0 disables spillover.
func WithSpillover(depth int) Option {
	return func(c *Config) { c.SpillDepth = depth }
}

// WithWAL enables the write-ahead request log in dir: every admitted
// baseline is appended (size-capped, hash-verified chunks) before it
// enters the batcher, committed when its exchange completes, and
// replayed through ReplayWAL after a restart. sync fsyncs each append
// and commit — crash-durable but slower; without it the log rides the
// page cache and only survives process death, not power loss.
func WithWAL(dir string, sync bool) Option {
	return func(c *Config) {
		c.WALDir = dir
		c.WALSync = sync
	}
}

// WithWALChunkBytes caps the WAL's payload chunk size (0 selects
// store.DefaultWALChunkBytes).
func WithWALChunkBytes(n int) Option {
	return func(c *Config) { c.WALChunkBytes = n }
}

// WithDedupe enables content-addressed dedupe: a request whose baseline
// hashes to a previously served one is answered from a bounded cache of
// cap results without touching the pipeline (the pipeline is
// deterministic, so the cached answer is bit-identical). cap <= 0
// disables; DefaultDedupeCap is a sane bound.
func WithDedupe(cap int) Option {
	return func(c *Config) { c.DedupeCap = cap }
}
