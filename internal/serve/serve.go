// Package serve is the network front door of the reproduction: a
// preprocessing-as-a-service daemon that accepts baselines over TCP, runs
// them through a shared cluster.Pool, and streams back the repaired image,
// its Rice-compressed downlink payload, and the fault-forensics report.
//
// The serving semantics live in Core, transport-independent:
//
//   - Admission control: a bounded global inflight limit plus per-client
//     concurrency quotas, decided on the request header before the
//     payload is on the wire. Requests over either limit are shed with a
//     retry-after hint instead of queueing unboundedly. Admission also
//     bounds bytes, not just request count: headers declaring more than
//     the request byte budget are refused, and the payload decode reads
//     through a budget-capped reader so wire-claimed gob lengths cannot
//     out-allocate the header the server admitted.
//   - Dynamic batching: admitted requests coalesce for up to a small
//     window (or a maximum batch size) and their tiles submit onto the
//     pool as one wave (see batcher).
//   - Deadline propagation: the client's context deadline rides the
//     request header and bounds the pool submission on the server.
//   - Graceful drain: Shutdown stops accepting, sheds new requests with
//     StatusDraining, finishes every admitted request, then closes.
//
// Server is the TCP transport over a Core; Router is the same transport
// over a Fleet backend, turning the identical admission pipeline into a
// consistent-hash front for many daemons. Client is the matching Go
// client with bounded exponential-backoff retries over sheds and
// transport faults, optionally fleet-aware (DialFleet).
package serve

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"spaceproc/internal/cluster"
	"spaceproc/internal/dataset"
	"spaceproc/internal/store"
	"spaceproc/internal/telemetry"
)

// Server defaults; override via Config or the corresponding Option.
const (
	// DefaultMaxInflight bounds admitted requests across all clients.
	DefaultMaxInflight = 64
	// DefaultRetryAfter is the shed hint handed to rejected clients.
	DefaultRetryAfter = 50 * time.Millisecond
	// DefaultBatchMax flushes a batch at this many members.
	DefaultBatchMax = 8
	// DefaultBatchWindow flushes a batch when its oldest member has
	// waited this long.
	DefaultBatchWindow = 2 * time.Millisecond
	// DefaultMaxRequestBytes bounds the in-memory payload one admitted
	// request may declare (Frames x Width x Height pixels at 2 bytes
	// each).
	DefaultMaxRequestBytes = 256 << 20
	// DefaultReceiveTimeout bounds how long the server waits for each
	// payload frame of an admitted request, so a client that stalls
	// mid-stream releases its admission slot instead of pinning it.
	DefaultReceiveTimeout = 30 * time.Second
	// maxClientGauges caps how many distinct per-client inflight gauges
	// the server will mint, so a hostile client sweeping IDs cannot grow
	// the registry unboundedly. Quota enforcement is not affected.
	maxClientGauges = 64
	// maxHeaderBytes caps the wire bytes one header decode may consume
	// (including gob's one-time type definitions).
	maxHeaderBytes = 64 << 10
)

// Backend is the processing sink the serving tier schedules onto: a
// *cluster.Pool on a daemon, a *Fleet on a router; the indirection keeps
// the serving semantics testable against scripted pipelines.
type Backend interface {
	Submit(ctx context.Context, s *dataset.Stack) <-chan *cluster.Result
}

// clientQuota tracks one client's admitted requests.
type clientQuota struct {
	inflight int
	gauge    *telemetry.Gauge // nil without telemetry or past the gauge cap
}

// serveMetrics holds the tier's registry handles, resolved once with the
// configured prefix and shared between a Core (admission counts) and its
// transport (wire counts and latencies).
type serveMetrics struct {
	requests  *telemetry.Counter
	accepted  *telemetry.Counter
	shed      *telemetry.Counter
	drainShed *telemetry.Counter
	errored   *telemetry.Counter
	inflight  *telemetry.Gauge
	reqLat    *telemetry.Histogram
	recvLat   *telemetry.Histogram
}

// Server is the daemon: the TCP transport over a Core. Construct with
// NewServer (options) or NewServerWith (a Config), start with Listen,
// stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	core   *Core
	cfg    Config // the core's defaulted copy
	met    *serveMetrics
	tracer *telemetry.Tracer // nil without telemetry
	log    *slog.Logger
	slow   slowRing

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	closed   bool
	connWG   sync.WaitGroup // accept loop + connection handlers
}

// NewServer builds a daemon over the backend (normally a *cluster.Pool
// shared with the rest of the process). Options apply over
// DefaultConfig and are validated strictly: an explicit zero is an
// error, not silently patched. Start it with Listen.
func NewServer(backend Backend, opts ...Option) (*Server, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return NewServerWith(backend, cfg)
}

// NewServerWith builds a daemon from cfg; zero fields take defaults.
func NewServerWith(backend Backend, cfg Config) (*Server, error) {
	core, err := NewCore(backend, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{
		core:   core,
		cfg:    core.Config(),
		met:    core.metrics(),
		tracer: core.Config().Telemetry.Tracer(),
		log:    core.Config().Logger,
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Core exposes the server's admission core (shared metrics handles,
// inflight accounting) for tests and embedding transports.
func (s *Server) Core() *Core { return s.core }

// ReplayWAL pushes every admitted-but-unserved request recovered from
// the configured WAL back through the admission path, committing and
// dedupe-caching each result; see Core.ReplayWAL. The daemon calls this
// once on boot, before accepting traffic, so clients retrying requests
// the previous run lost hit the warmed cache.
func (s *Server) ReplayWAL(ctx context.Context) (int, error) {
	return s.core.ReplayWAL(ctx)
}

// Listen binds addr (e.g. "127.0.0.1:0") and serves connections on
// background goroutines until Shutdown or Close. Returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("serve: server already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("serve: already listening")
	}
	s.ln = ln
	s.mu.Unlock()
	if s.log != nil {
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "serving",
			slog.String("addr", ln.Addr().String()))
	}
	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed || s.draining {
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.connWG.Add(1)
			go func(conn net.Conn) {
				defer s.connWG.Done()
				s.serveConn(conn)
			}(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Inflight reports the number of admitted requests currently in the
// pipeline.
func (s *Server) Inflight() int { return s.core.Inflight() }

// serveConn answers requests on one connection until it drops or the
// server closes.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The decoder reads through a per-phase byte budget: headers get a
	// small fixed allowance, payloads the wire budget their admitted
	// header earned. A stream claiming more simply fails its decode.
	lim := &limitReader{r: conn, n: maxHeaderBytes}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.n = maxHeaderBytes
		var hdr header
		if err := dec.Decode(&hdr); err != nil {
			return
		}
		if !s.handle(conn, enc, dec, lim, hdr) {
			return
		}
	}
}

// limitReader caps how many bytes the gob decoder may consume per
// protocol phase, so a wire-claimed message length cannot pull more off
// the socket than the admitted header declared. n < 0 reads unlimited.
type limitReader struct {
	r io.Reader
	n int64
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.n < 0 {
		return l.r.Read(p)
	}
	if l.n == 0 {
		return 0, errors.New("serve: request byte budget exhausted")
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// handle runs one request exchange; it reports whether the connection is
// still in sync and should serve another.
//
// Tracing: when the wire header carries a trace position the request's
// whole handling runs as a serve_request span parented under the
// client's attempt, with admission / receive / respond child spans here
// and queue_wait / batch spans in the batcher. The server never mints
// root traces — an untraced request stays untraced — so trace volume is
// always the client's choice. Every admitted request also leaves one
// structured access-log line and competes for the slowest-requests ring.
func (s *Server) handle(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, lim *limitReader, hdr header) bool {
	if s.met != nil {
		s.met.requests.Inc()
	}
	if err := hdr.validate(); err != nil {
		// The client has not streamed anything yet, so the connection
		// stays usable after an invalid header.
		if s.met != nil {
			s.met.errored.Inc()
		}
		return enc.Encode(&response{Status: StatusError, Err: err.Error()}) == nil
	}
	if declared := hdr.payloadBytes(); declared > s.cfg.MaxRequestBytes {
		if s.met != nil {
			s.met.errored.Inc()
		}
		return enc.Encode(&response{Status: StatusError,
			Err: fmt.Sprintf("serve: request declares %d payload bytes, budget is %d",
				declared, s.cfg.MaxRequestBytes)}) == nil
	}
	client := sanitizeClientID(hdr.Client, conn)

	wire := telemetry.TraceContext{TraceID: hdr.TraceID, SpanID: hdr.SpanID}
	var reqSpan *telemetry.TraceSpan
	if s.tracer != nil && wire.Valid() {
		reqSpan = s.tracer.StartSpan(wire, StageServeRequest, client)
	}
	// child opens a phase span under the request span; nil (a no-op
	// throughout) when the request is untraced.
	child := func(stage, label string) *telemetry.TraceSpan {
		if reqSpan == nil {
			return nil
		}
		return s.tracer.StartSpan(reqSpan.Context(), stage, label)
	}

	adm := child(StageAdmission, client)
	dcsn, release := s.core.Admit(client)
	adm.Annotate("status", dcsn.Status.String())
	adm.End()
	verdict := response{Status: dcsn.Status, RetryAfter: dcsn.RetryAfter}
	if dcsn.Status != StatusAccepted {
		if s.log != nil {
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "request shed",
				slog.String("client", client),
				slog.String("status", dcsn.Status.String()),
				slog.String("trace_id", traceIDString(wire)),
				slog.Duration("retry_after", dcsn.RetryAfter))
		}
		if reqSpan != nil {
			reqSpan.Annotate("outcome", dcsn.Status.String())
			reqSpan.End()
		}
		return enc.Encode(&verdict) == nil
	}
	defer release()
	start := time.Now()
	if s.met != nil {
		defer func() { s.met.reqLat.Observe(time.Since(start)) }()
	}

	// The access log, the slowest-requests ring and the request span all
	// settle here, whatever path the request takes out of this function.
	outcome := "disconnect"
	var bs *BatchStats
	defer func() {
		dur := time.Since(start)
		var queueWait time.Duration
		batchSize := 0
		if bs != nil {
			queueWait, batchSize = bs.QueueWait, bs.BatchSize
		}
		if s.log != nil {
			s.log.LogAttrs(context.Background(), slog.LevelInfo, "request served",
				slog.String("client", client),
				slog.Int64("bytes", hdr.payloadBytes()),
				slog.Duration("queue_wait", queueWait),
				slog.Int("batch_size", batchSize),
				slog.String("outcome", outcome),
				slog.String("trace_id", traceIDString(wire)),
				slog.Duration("duration", dur))
		}
		s.slow.note(SlowRequest{
			Time:      time.Now(),
			Client:    client,
			TraceID:   traceIDString(wire),
			Outcome:   outcome,
			Bytes:     hdr.payloadBytes(),
			QueueWait: queueWait,
			BatchSize: batchSize,
			Duration:  dur,
		})
		if reqSpan != nil {
			reqSpan.Annotate("outcome", outcome)
			reqSpan.End()
		}
	}()

	if err := enc.Encode(&verdict); err != nil {
		return false
	}

	// Receive the baseline. A decode fault here leaves the stream
	// unsynchronized, so the connection is dropped. The reader budget is
	// the admitted header's worst-case wire size; each frame must land
	// within the receive timeout so a stalled client cannot pin its
	// admission slot.
	recv := child(StageReceive, fmt.Sprintf("frames_%d", hdr.Frames))
	lim.n = hdr.wireBudget()
	stack := &dataset.Stack{Frames: make([]*dataset.Image, hdr.Frames)}
	for i := range stack.Frames {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReceiveTimeout)) //nolint:errcheck // a dead conn fails the decode below
		var frame dataset.Image
		if err := dec.Decode(&frame); err != nil {
			outcome = "recv_error"
			recv.Annotate("error", err.Error())
			recv.End()
			return false
		}
		if frame.Width != hdr.Width || frame.Height != hdr.Height || len(frame.Pix) != hdr.Width*hdr.Height {
			if s.met != nil {
				s.met.errored.Inc()
			}
			outcome = "bad_frame"
			recv.Annotate("error", "frame does not match header")
			recv.End()
			enc.Encode(&response{Status: StatusError,
				Err: fmt.Sprintf("serve: frame %d is %dx%d (%d px), header said %dx%d",
					i, frame.Width, frame.Height, len(frame.Pix), hdr.Width, hdr.Height)})
			return false
		}
		stack.Frames[i] = &frame
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // idle waits between requests are unbounded by design
	recv.End()
	if s.met != nil {
		s.met.recvLat.Observe(time.Since(start))
	}
	key := hdr.Key
	if key == "" {
		key = client
	}

	// Durable ingest: when enabled, address the baseline by content. A
	// digest matching a previously served baseline is answered straight
	// from the dedupe cache — the pipeline is deterministic, so the
	// cached result is bit-identical to a recomputation. A miss is
	// appended to the WAL before it enters the batcher, so a crash
	// between here and the response replays it on restart.
	var (
		dig    store.Digest
		walSeq uint64
		logged bool
	)
	if s.core.IngestEnabled() {
		dig = store.StackDigest(stack)
		if cached, ok := s.core.CachedResult(dig); ok {
			resp := child(StageRespond, client)
			sent := enc.Encode(&response{
				Status:     StatusOK,
				Image:      cached.Image,
				Compressed: cached.Compressed,
				Stats:      cached.Stats,
				PreStats:   cached.PreStats,
				Retries:    cached.Retries,
			}) == nil
			resp.End()
			if sent {
				outcome = "dedupe_hit"
			}
			return sent
		}
		walSeq, logged = s.core.LogAdmitted(client, key, dig, stack)
	}

	// Run the baseline through the backend, honoring the client's
	// deadline and dying with the server on a forced close. The route
	// rides the context so a fleet backend can place the request on its
	// ring by the client's key; the trace position rides it too, so the
	// batcher's and backend's spans continue this request's trace.
	ctx := s.core.Context()
	if !hdr.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, hdr.Deadline)
		defer cancel()
	}
	ctx = WithRoute(ctx, Route{Client: client, Key: key})
	ctx, bs = withBatchStats(ctx)
	if reqSpan != nil {
		ctx = telemetry.ContextWithTrace(ctx, s.tracer, reqSpan.Context())
	}
	res := <-s.core.Submit(ctx, stack)
	// Whatever the pipeline answered, the exchange is resolved: the WAL
	// entry must not replay after a restart (a crash before this point is
	// exactly what replay is for), and a served result seeds the dedupe
	// cache. Failures commit too — shed and errored requests are resolved
	// by their response, and the client owns the retry.
	if logged {
		var cacheRes *cluster.Result
		if res.Err == nil {
			cacheRes = res
		}
		s.core.ResolveLogged(walSeq, dig, cacheRes)
	} else if res.Err == nil {
		s.core.cacheResult(dig, res)
	}
	if res.Err != nil {
		// A backend shed (the fleet found every candidate saturated) is
		// relayed as a retryable shed, not a terminal error, so clients
		// back off and replay exactly as if admission had refused them.
		if errors.Is(res.Err, ErrShed) {
			if s.met != nil {
				s.met.shed.Inc()
			}
			if s.log != nil {
				s.log.LogAttrs(ctx, slog.LevelWarn, "request shed by backend",
					slog.String("client", client))
			}
			outcome = "shed"
			return enc.Encode(&response{Status: StatusShed, RetryAfter: s.cfg.RetryAfter}) == nil
		}
		if s.met != nil {
			s.met.errored.Inc()
		}
		if s.log != nil {
			s.log.LogAttrs(ctx, slog.LevelWarn, "request failed",
				slog.String("client", client),
				slog.String("error", res.Err.Error()))
		}
		outcome = "error"
		return enc.Encode(&response{Status: StatusError, Err: res.Err.Error()}) == nil
	}
	resp := child(StageRespond, client)
	ok := enc.Encode(&response{
		Status:     StatusOK,
		Image:      res.Image,
		Compressed: res.Compressed,
		Stats:      res.Stats,
		PreStats:   res.PreStats,
		Retries:    res.Retries,
	}) == nil
	resp.End()
	if ok {
		outcome = "ok"
	}
	return ok
}

// traceIDString renders the trace ID for logs ("" when untraced).
func traceIDString(tc telemetry.TraceContext) string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x", tc.TraceID)
}

// Shutdown drains the server gracefully: stop accepting connections, shed
// new requests with StatusDraining, wait for every admitted request to
// finish (bounded by ctx), then close the remaining connections. It
// returns nil on a clean drain and ctx.Err() when the deadline forced the
// close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if !s.core.BeginDrain() {
		// A concurrent Shutdown owns the drain; wait it out, but still
		// honor this caller's deadline with a forced close.
		done := s.core.Idle()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.core.ForceCancel()
			s.closeConns()
			<-done
			return ctx.Err()
		}
	}
	if ln != nil {
		ln.Close()
	}
	if s.log != nil {
		s.log.LogAttrs(ctx, slog.LevelInfo, "draining",
			slog.Int("inflight", s.core.Inflight()))
	}

	done := s.core.Idle()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline hit: cancel the remaining requests' pipeline contexts
		// so their pool submissions abandon instead of running on, and
		// close the connections — cancellation alone cannot unblock a
		// handler parked in a network read or write, and the drain must
		// not wait on one.
		s.core.ForceCancel()
		s.closeConns()
		<-done
	}

	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.core.ForceCancel()
	s.core.closeIngest()
	if s.log != nil {
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "drained")
	}
	return err
}

// closeConns force-closes every tracked connection, unblocking handlers
// parked in network reads or writes so they retire their admission slots.
func (s *Server) closeConns() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// Close shuts down immediately: inflight requests' contexts are cancelled
// and connections dropped without waiting for a drain.
func (s *Server) Close() {
	forced, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(forced) //nolint:errcheck // forced close, error is ctx.Canceled by construction
}

// sanitizeClientID maps a wire-supplied client ID onto the quota and
// telemetry keyspace: metric-safe runes only, bounded length, remote host
// as the fallback for anonymous clients.
func sanitizeClientID(id string, conn net.Conn) string {
	if id == "" {
		host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
		if err != nil {
			host = conn.RemoteAddr().String()
		}
		id = host
	}
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 32 {
			break
		}
	}
	if b.Len() == 0 {
		return "anon"
	}
	return b.String()
}
