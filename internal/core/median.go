package core

import (
	"spaceproc/internal/dataset"
)

// Median3 is the paper's Algorithm 2: value-based median smoothing with a
// sliding window of three pixels, which the paper found to beat both wider
// median windows (more false alarms) and mean smoothing (less robust).
//
// Following the printed pseudocode, the filter runs in place and
// sequentially: P(1) is replaced first, and each P(i) is the median of the
// already-smoothed P(i-1), the current P(i), and the raw P(i+1).
type Median3 struct{}

var _ ScratchPreprocessor = Median3{}

// Name implements SeriesPreprocessor.
func (Median3) Name() string { return "MedianSmooth3" }

// ProcessSeriesScratch implements ScratchPreprocessor. The in-place
// sliding window needs no buffers, so the scratch and stats are unused;
// the method exists so the cluster workers can treat all three series
// algorithms uniformly through the allocation-free path.
func (m Median3) ProcessSeriesScratch(s dataset.Series, _ *VoteScratch, _ *VoteStats) {
	m.ProcessSeries(s)
}

// ProcessSeries implements SeriesPreprocessor.
func (Median3) ProcessSeries(s dataset.Series) {
	n := len(s)
	if n < 3 {
		return
	}
	s[0] = median3u16(s[0], s[1], s[2])
	for i := 1; i < n-1; i++ {
		s[i] = median3u16(s[i-1], s[i], s[i+1])
	}
	s[n-1] = median3u16(s[n-3], s[n-2], s[n-1])
}

// ProcessStack applies the filter to every coordinate's series in place.
func (m Median3) ProcessStack(s *dataset.Stack) { ProcessStackWith(m, s) }

func median3u16(a, b, c uint16) uint16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// median3f32 is the float payload variant used by the OTIS adaptations.
func median3f32(a, b, c float32) float32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
