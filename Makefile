# Developer entry points. `make check` is the tier-1 verification gate
# (referenced from ROADMAP.md): vet, build everything, and run the full
# test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./...
