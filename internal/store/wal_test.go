package store

import (
	"os"
	"path/filepath"
	"testing"

	"spaceproc/internal/dataset"
)

// walStack builds a small deterministic baseline whose pixels encode the
// tag, so replayed stacks are distinguishable.
func walStack(tag, frames, w, h int) *dataset.Stack {
	s := dataset.NewStack(frames, w, h)
	for f, fr := range s.Frames {
		for i := range fr.Pix {
			fr.Pix[i] = uint16((tag*1031 + f*97 + i) % 4096)
		}
	}
	return s
}

func samePixels(t *testing.T, a, b *dataset.Stack) {
	t.Helper()
	if a.Len() != b.Len() || a.Width() != b.Width() || a.Height() != b.Height() {
		t.Fatalf("geometry %dx%dx%d vs %dx%dx%d",
			a.Len(), a.Width(), a.Height(), b.Len(), b.Width(), b.Height())
	}
	for f := range a.Frames {
		for i := range a.Frames[f].Pix {
			if a.Frames[f].Pix[i] != b.Frames[f].Pix[i] {
				t.Fatalf("pixel mismatch frame %d offset %d", f, i)
			}
		}
	}
}

func TestStackDigest(t *testing.T) {
	a := walStack(1, 4, 8, 8)
	b := walStack(1, 4, 8, 8)
	if StackDigest(a) != StackDigest(b) {
		t.Fatal("identical stacks must share a digest")
	}
	b.Frames[2].Pix[17]++
	if StackDigest(a) == StackDigest(b) {
		t.Fatal("one flipped pixel must change the digest")
	}
	// Geometry is part of the address: same pixel bytes, different shape.
	c := walStack(1, 4, 8, 8)
	d := &dataset.Stack{}
	for _, fr := range c.Frames {
		d.Frames = append(d.Frames, &dataset.Image{Width: 16, Height: 4, Pix: fr.Pix})
	}
	if StackDigest(c) == StackDigest(d) {
		t.Fatal("reshaped stack must change the digest")
	}
}

func TestWALAppendReplayCommit(t *testing.T) {
	dir := t.TempDir()
	w, entries, rep, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || rep.Entries != 0 {
		t.Fatalf("fresh wal not empty: %d entries, report %+v", len(entries), rep)
	}

	s1, s2, s3 := walStack(1, 3, 8, 4), walStack(2, 3, 8, 4), walStack(3, 3, 8, 4)
	seq1, err := w.Append("alice", "k1", StackDigest(s1), s1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("bob", "k2", StackDigest(s2), s2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("carol", "", StackDigest(s3), s3); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", w.Pending())
	}
	if err := w.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 2 {
		t.Fatalf("pending = %d after commit, want 2", w.Pending())
	}
	w.Close()

	// Recovery: the two uncommitted entries come back, in append order,
	// bit-identical.
	w2, entries, rep, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep.Entries != 3 || rep.Committed != 1 || rep.Corrupt != 0 || rep.Truncated {
		t.Fatalf("recovery report %+v", rep)
	}
	if len(entries) != 2 {
		t.Fatalf("replayable = %d, want 2", len(entries))
	}
	if entries[0].Seq >= entries[1].Seq {
		t.Fatal("entries not in sequence order")
	}
	if entries[0].Client != "bob" || entries[0].Key != "k2" {
		t.Fatalf("entry 0 = %q/%q", entries[0].Client, entries[0].Key)
	}
	if entries[1].Client != "carol" || entries[1].Key != "" {
		t.Fatalf("entry 1 = %q/%q", entries[1].Client, entries[1].Key)
	}
	samePixels(t, s2, entries[0].Stack)
	samePixels(t, s3, entries[1].Stack)
	if entries[0].Digest != StackDigest(s2) {
		t.Fatal("digest not preserved")
	}

	// New appends continue the sequence past everything seen.
	seqNew, err := w2.Append("dave", "", StackDigest(s1), s1)
	if err != nil {
		t.Fatal(err)
	}
	if seqNew <= entries[1].Seq {
		t.Fatalf("new seq %d not past recovered %d", seqNew, entries[1].Seq)
	}
}

func TestWALChunkingLargePayload(t *testing.T) {
	dir := t.TempDir()
	// 3 frames x 64x64 x 2 bytes = 24576 payload bytes; a 1 KiB cap
	// forces 24 chunks.
	w, _, _, err := OpenWAL(dir, WALOptions{ChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := walStack(9, 3, 64, 64)
	if _, err := w.Append("chunky", "", StackDigest(s), s); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, entries, rep, err := OpenWAL(dir, WALOptions{ChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(entries) != 1 || rep.Corrupt != 0 {
		t.Fatalf("chunked entry did not survive: %d entries, report %+v", len(entries), rep)
	}
	samePixels(t, s, entries[0].Stack)
}

func TestWALTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := walStack(1, 2, 8, 8), walStack(2, 2, 8, 8)
	if _, err := w.Append("a", "", StackDigest(s1), s1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("b", "", StackDigest(s2), s2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the tail mid-record, as a crash mid-append would.
	path := filepath.Join(dir, "ingest.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, entries, rep, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !rep.Truncated {
		t.Fatalf("report %+v should flag truncation", rep)
	}
	if len(entries) != 1 || entries[0].Client != "a" {
		t.Fatalf("intact prefix should survive: %d entries", len(entries))
	}
	samePixels(t, s1, entries[0].Stack)
}

func TestWALCorruptChunkDropsEntry(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := walStack(1, 2, 8, 8), walStack(2, 2, 8, 8)
	if _, err := w.Append("victim", "", StackDigest(s1), s1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("survivor", "", StackDigest(s2), s2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip one payload byte inside the first entry's chunk; its record
	// hash must catch it and only that entry is lost.
	path := filepath.Join(dir, "ingest.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Entry 1 layout: ENTRY record, then one CHUNK record whose payload
	// starts after the chunk header (magic+type+len, seq+index).
	entryBody := 8 + 32 + 16 + 2 + len("victim") + 2
	chunkPayload := walHeaderSize + entryBody + 32 + walHeaderSize + 12
	raw[chunkPayload+5] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, entries, rep, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep.Corrupt == 0 {
		t.Fatalf("report %+v should count the torn record", rep)
	}
	if len(entries) != 1 || entries[0].Client != "survivor" {
		t.Fatalf("want only the survivor, got %d entries", len(entries))
	}
	samePixels(t, s2, entries[0].Stack)
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := walStack(4, 2, 16, 16)
	var seqs []uint64
	for i := 0; i < 8; i++ {
		seq, err := w.Append("c", "", StackDigest(s), s)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	path := filepath.Join(dir, "ingest.wal")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 0 {
		t.Fatalf("fully-committed log should compact to empty, got %d bytes (was %d)",
			after.Size(), before.Size())
	}
	// The WAL stays writable after compaction.
	if _, err := w.Append("c", "", StackDigest(s), s); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, entries, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(entries) != 1 {
		t.Fatalf("post-compaction append lost: %d entries", len(entries))
	}
}

func TestWALSyncOption(t *testing.T) {
	// Sync mode exercises the fsync paths; correctness is the same.
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := walStack(5, 2, 8, 8)
	seq, err := w.Append("s", "", StackDigest(s), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
}

func TestWALClosedErrors(t *testing.T) {
	w, _, _, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	s := walStack(1, 1, 2, 2)
	if _, err := w.Append("x", "", StackDigest(s), s); err == nil {
		t.Fatal("append on closed wal should error")
	}
	if err := w.Commit(0); err == nil {
		t.Fatal("commit on closed wal should error")
	}
}
