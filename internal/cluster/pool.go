// Pool is the long-lived scheduling core of the Figure 1 architecture.
// Where the seed code rebuilt a fan-out per baseline over a frozen worker
// slice, the pool owns worker membership and scheduling for the life of
// the process: workers join and leave at runtime, a consecutive-failure
// circuit breaker quarantines nodes that keep failing (with exponential
// backoff and probe-based half-open recovery), and a bounded shared job
// queue lets many baselines pipeline through one set of slaves with
// backpressure on the submitters.
//
// Health is driven purely by observed results — the pool never pings a
// worker; a quarantined node earns readmission by succeeding on a single
// half-open probe tile. A failure that trips a worker's circuit (or fails
// a probe) while healthy peers remain does not charge the tile's retry
// budget: the tile is drained to the healthy workers instead, so one
// crashed slave cannot burn every tile's budget. When no healthy workers
// remain, failures charge the budget again, which bounds termination.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spaceproc/internal/dataset"
	"spaceproc/internal/rice"
	"spaceproc/internal/telemetry"
)

// Pool defaults; override with the corresponding PoolOption.
const (
	// DefaultQueueDepth bounds the shared job queue. Submitters block once
	// the queue is full, which is the backpressure that keeps a burst of
	// baselines from ballooning memory.
	DefaultQueueDepth = 256
	// DefaultBreakerThreshold is the consecutive-failure count that trips
	// a worker's circuit.
	DefaultBreakerThreshold = 5
	// DefaultBreakerBackoff is the first quarantine duration; it doubles
	// on every failed probe up to DefaultBreakerBackoffMax.
	DefaultBreakerBackoff    = 25 * time.Millisecond
	DefaultBreakerBackoffMax = 2 * time.Second
)

var errPoolClosed = errors.New("cluster: pool closed")

// WorkerState is a pool worker's circuit-breaker state.
type WorkerState int

const (
	// WorkerHealthy workers compete for queued tiles.
	WorkerHealthy WorkerState = iota
	// WorkerQuarantined workers sit out their backoff after tripping the
	// consecutive-failure breaker.
	WorkerQuarantined
	// WorkerProbing workers have served their backoff and are half-open:
	// the next tile is a probe whose outcome readmits or re-quarantines.
	WorkerProbing
)

// String renders the state for status output and logs.
func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerQuarantined:
		return "quarantined"
	case WorkerProbing:
		return "probing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// WorkerStatus is one worker's membership and health snapshot.
type WorkerStatus struct {
	// ID is the pool-assigned stable identifier (never reused).
	ID string
	// State is the circuit-breaker state at snapshot time.
	State WorkerState
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int
	// Backoff is the worker's current quarantine duration (zero while the
	// circuit has never tripped since the last readmission).
	Backoff time.Duration
}

// poolWorker is one member: the Worker, its runner's stop channel, and its
// breaker state (guarded by the pool mutex).
type poolWorker struct {
	id   string
	seq  int
	w    Worker
	hist *telemetry.Histogram // per-worker process latency; nil without telemetry
	stop chan struct{}

	state       WorkerState
	consecutive int
	backoff     time.Duration
	reopenAt    time.Time
}

// poolJob is one tile of one submission with its retry budget.
type poolJob struct {
	sub      *submission
	tile     dataset.Tile
	retries  int
	enqueued time.Time // zero unless telemetry is enabled
	// origin is the trace context of the tile's first dispatch, so every
	// requeue, retry and deadline expiry parents under the dispatch that
	// started the tile's story.
	origin telemetry.TraceContext
}

// poolMetrics holds the pool's registry handles, resolved once at
// construction so the per-tile path never touches the registry maps.
type poolMetrics struct {
	runs          *telemetry.Counter
	tiles         *telemetry.Counter
	completed     *telemetry.Counter
	retried       *telemetry.Counter
	failed        *telemetry.Counter
	bytesOut      *telemetry.Counter
	circuitOpened *telemetry.Counter
	circuitClosed *telemetry.Counter
	dispatchWait  *telemetry.Histogram
	tileProcess   *telemetry.Histogram
	run           *telemetry.Histogram
	workers       *telemetry.Gauge
	healthy       *telemetry.Gauge
	quarantined   *telemetry.Gauge
	queueDepth    *telemetry.Gauge
}

// Pool schedules tiles from many concurrent submissions over a mutable set
// of workers. Construct with NewPool, populate with AddWorker, submit
// baselines with Submit, and Close when done.
type Pool struct {
	tileSize         int
	retries          int
	queueCap         int
	breakerThreshold int
	backoffBase      time.Duration
	backoffMax       time.Duration

	tel    *telemetry.Registry
	met    *poolMetrics
	tracer *telemetry.Tracer
	log    *slog.Logger

	jobs chan *poolJob
	done chan struct{}

	mu      sync.Mutex
	workers map[string]*poolWorker
	seq     int
	closed  bool
	wg      sync.WaitGroup
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// WithPoolTileSize overrides the 128x128 fragment size.
func WithPoolTileSize(n int) PoolOption {
	return func(p *Pool) { p.tileSize = n }
}

// WithPoolRetries sets how many times a tile may be charged for a worker
// failure before its baseline is abandoned. Failures that trip a worker's
// circuit (or fail a half-open probe) while healthy workers remain are not
// charged.
func WithPoolRetries(n int) PoolOption {
	return func(p *Pool) { p.retries = n }
}

// WithQueueDepth bounds the shared job queue; submitters block when it is
// full.
func WithQueueDepth(n int) PoolOption {
	return func(p *Pool) { p.queueCap = n }
}

// WithBreaker tunes the circuit breaker: threshold consecutive failures
// trip a worker, which then sits out base (doubling per failed probe, up
// to max) before a half-open probe.
func WithBreaker(threshold int, base, max time.Duration) PoolOption {
	return func(p *Pool) {
		p.breakerThreshold = threshold
		p.backoffBase = base
		p.backoffMax = max
	}
}

// WithPoolTelemetry wires the pool's instrumentation into reg: the
// pipeline_* counters and stage spans, per-worker process histograms keyed
// by stable worker ID (pipeline_worker_<id>_process), the scheduler gauges
// (pipeline_pool_workers_healthy, pipeline_pool_workers_quarantined,
// pipeline_pool_queue_depth) and circuit transition counters
// (pipeline_pool_circuit_open_total / _close_total), plus distributed
// trace events into the registry's Tracer.
func WithPoolTelemetry(reg *telemetry.Registry) PoolOption {
	return func(p *Pool) { p.tel = reg }
}

// WithPoolLogger routes the pool's fault forensics — WARN on tile retries,
// drains and quarantines, ERROR on permanent tile failure, INFO on
// readmission — into l.
func WithPoolLogger(l *slog.Logger) PoolOption {
	return func(p *Pool) { p.log = l }
}

// NewPool builds an empty pool; add workers with AddWorker.
func NewPool(opts ...PoolOption) (*Pool, error) {
	p := &Pool{
		tileSize:         dataset.TileSize,
		retries:          2,
		queueCap:         DefaultQueueDepth,
		breakerThreshold: DefaultBreakerThreshold,
		backoffBase:      DefaultBreakerBackoff,
		backoffMax:       DefaultBreakerBackoffMax,
		workers:          make(map[string]*poolWorker),
		done:             make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	if p.tileSize <= 0 {
		return nil, fmt.Errorf("cluster: tile size %d must be positive", p.tileSize)
	}
	if p.retries < 0 {
		return nil, fmt.Errorf("cluster: negative retry budget %d", p.retries)
	}
	if p.queueCap <= 0 {
		return nil, fmt.Errorf("cluster: queue depth %d must be positive", p.queueCap)
	}
	if p.breakerThreshold <= 0 {
		return nil, fmt.Errorf("cluster: breaker threshold %d must be positive", p.breakerThreshold)
	}
	if p.backoffBase <= 0 || p.backoffMax < p.backoffBase {
		return nil, fmt.Errorf("cluster: breaker backoff [%v, %v] must be positive and ordered",
			p.backoffBase, p.backoffMax)
	}
	p.jobs = make(chan *poolJob, p.queueCap)
	if p.tel != nil {
		p.met = &poolMetrics{
			runs:          p.tel.Counter("pipeline_runs_total"),
			tiles:         p.tel.Counter("pipeline_tiles_total"),
			completed:     p.tel.Counter("pipeline_tiles_completed_total"),
			retried:       p.tel.Counter("pipeline_tile_retries_total"),
			failed:        p.tel.Counter("pipeline_tile_failures_total"),
			bytesOut:      p.tel.Counter("pipeline_bytes_compressed_total"),
			circuitOpened: p.tel.Counter("pipeline_pool_circuit_open_total"),
			circuitClosed: p.tel.Counter("pipeline_pool_circuit_close_total"),
			dispatchWait:  p.tel.Histogram("pipeline_dispatch_wait"),
			tileProcess:   p.tel.Histogram("pipeline_tile_process"),
			run:           p.tel.Histogram("pipeline_run"),
			workers:       p.tel.Gauge("pipeline_workers"),
			healthy:       p.tel.Gauge("pipeline_pool_workers_healthy"),
			quarantined:   p.tel.Gauge("pipeline_pool_workers_quarantined"),
			queueDepth:    p.tel.Gauge("pipeline_pool_queue_depth"),
		}
		p.tracer = p.tel.Tracer()
		p.tracer.SetProc("master")
	}
	return p, nil
}

// AddWorker admits w into the pool and returns its stable ID ("w1", "w2",
// ...). IDs are never reused, so telemetry keyed by them survives
// membership churn. Returns "" if the pool is closed.
func (p *Pool) AddWorker(w Worker) string {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ""
	}
	p.seq++
	pw := &poolWorker{
		id:   fmt.Sprintf("w%d", p.seq),
		seq:  p.seq,
		w:    w,
		stop: make(chan struct{}),
	}
	if p.tel != nil {
		pw.hist = p.tel.Histogram("pipeline_worker_" + pw.id + "_process")
	}
	p.workers[pw.id] = pw
	p.updateGaugesLocked()
	p.wg.Add(1)
	p.mu.Unlock()
	go p.runWorker(pw)
	return pw.id
}

// RemoveWorker retires the identified worker. Its in-flight tile (if any)
// completes normally; no new tiles are dispatched to it. Reports whether
// the ID was a member.
func (p *Pool) RemoveWorker(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	pw, ok := p.workers[id]
	if !ok {
		return false
	}
	delete(p.workers, id)
	close(pw.stop)
	p.updateGaugesLocked()
	return ok
}

// Workers snapshots membership and health, ordered by admission.
func (p *Pool) Workers() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStatus, 0, len(p.workers))
	for _, pw := range p.workers {
		out = append(out, WorkerStatus{
			ID:                  pw.id,
			State:               pw.state,
			ConsecutiveFailures: pw.consecutive,
			Backoff:             pw.backoff,
		})
	}
	sort.Slice(out, func(i, j int) bool { return idSeqLess(out[i].ID, out[j].ID) })
	return out
}

// idSeqLess orders "w<seq>" IDs numerically (w2 before w10).
func idSeqLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Size returns the current worker count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Close shuts the pool down: runners exit after their in-flight tile, and
// every job still queued fails its submission with a pool-closed error (so
// no Submit caller blocks forever). Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
	for {
		select {
		case j := <-p.jobs:
			j.sub.fail(errPoolClosed)
		default:
			return
		}
	}
}

// submission tracks one Submit call: its tiles' completion accounting and
// the spans that bracket the run. Exactly one finalize happens, when the
// pending count hits zero.
type submission struct {
	pool *Pool
	ctx  context.Context
	out  chan *Result

	width, height, tiles int

	runTrace telemetry.TraceContext
	runSpan  telemetry.ActiveSpan
	runTSpan *telemetry.TraceSpan

	results  chan TileResult
	failures chan error
	retried  atomic.Int64
	pending  atomic.Int64
}

// Submit fragments the stack and enqueues its tiles onto the shared queue,
// blocking for backpressure when the queue is full, and returns a channel
// that delivers the baseline's Result exactly once. A failed run delivers
// a Result whose Err is set (fragmentation error, joined permanent tile
// failures, ctx cancellation, or pool closure). Many submissions may be in
// flight at once; their tiles interleave over the same workers.
func (p *Pool) Submit(ctx context.Context, s *dataset.Stack) <-chan *Result {
	sub := &submission{pool: p, out: make(chan *Result, 1)}
	sub.runSpan = p.tel.StartSpan(StageRun, "baseline")
	// Continue the caller's trace (the mission layer mints one per
	// baseline) or open a fresh root when this run is the outermost traced
	// unit. runTrace parents every tile's first dispatch.
	if p.tracer != nil {
		if parent, ok := telemetry.TraceFromContext(ctx); ok {
			sub.runTSpan = p.tracer.StartSpan(parent, StageRun, "baseline")
		} else {
			sub.runTSpan = p.tracer.StartTrace(StageRun, "baseline")
		}
		sub.runTrace = sub.runTSpan.Context()
		ctx = telemetry.ContextWithTrace(ctx, p.tracer, sub.runTrace)
	}
	sub.ctx = ctx

	fragSpan := p.tel.StartSpan(StageFragment, "baseline")
	fragTSpan := p.tracer.StartSpan(sub.runTrace, StageFragment, "baseline")
	tiles, err := dataset.Fragment(s, p.tileSize)
	// End the fragment spans before the error check so the failed
	// fragmentation itself is visible in the trace.
	fragSpan.End()
	fragTSpan.End()
	if err != nil {
		sub.deliver(&Result{Err: err})
		return sub.out
	}

	sub.width, sub.height, sub.tiles = s.Width(), s.Height(), len(tiles)
	sub.results = make(chan TileResult, len(tiles))
	sub.failures = make(chan error, len(tiles))
	sub.pending.Store(int64(len(tiles)))
	if p.met != nil {
		p.met.runs.Inc()
		p.met.tiles.Add(int64(len(tiles)))
	}
	for i, t := range tiles {
		// Check cancellation before the select: with queue space free both
		// cases would be ready and the choice random, and an abandoned
		// submission must stop enqueueing deterministically.
		if ctx.Err() != nil {
			sub.account(len(tiles) - i)
			return sub.out
		}
		j := &poolJob{sub: sub, tile: t, enqueued: p.enqueueTime()}
		select {
		case p.jobs <- j:
			p.noteQueueDepth()
		case <-ctx.Done():
			sub.account(len(tiles) - i)
			return sub.out
		case <-p.done:
			sub.failN(len(tiles)-i, errPoolClosed)
			return sub.out
		}
	}
	return sub.out
}

// account retires n tiles from the pending set and finalizes the
// submission when the last one lands. Callers send to results/failures
// before accounting, so finalize observes every outcome.
func (sub *submission) account(n int) {
	if sub.pending.Add(-int64(n)) == 0 {
		go sub.finalize()
	}
}

// fail records a permanent tile failure and retires the tile.
func (sub *submission) fail(err error) {
	sub.failures <- err
	sub.account(1)
}

// failN fails n tiles with the same error.
func (sub *submission) failN(n int, err error) {
	for i := 0; i < n; i++ {
		sub.failures <- err
	}
	sub.account(n)
}

// deliver ends the run spans and hands the result to the caller. It runs
// exactly once per submission, and the spans end before the send so a
// caller that returns from <-out observes them recorded.
func (sub *submission) deliver(res *Result) {
	p := sub.pool
	if p.met != nil {
		sub.runSpan.EndTo(p.met.run)
	} else {
		sub.runSpan.End()
	}
	sub.runTSpan.End()
	sub.out <- res
	close(sub.out)
}

// finalize assembles the submission's outcome: cancellation first, then
// joined permanent failures, then blit + compress of a clean run.
func (sub *submission) finalize() {
	p := sub.pool
	close(sub.results)
	close(sub.failures)
	if err := sub.ctx.Err(); err != nil {
		sub.deliver(&Result{Err: err})
		return
	}
	// Aggregate every permanent tile failure, not just the first: a
	// multi-tile outage reads very differently from a single bad segment.
	var errs []error
	for e := range sub.failures {
		errs = append(errs, e)
	}
	if len(errs) > 0 {
		sub.deliver(&Result{Err: errors.Join(errs...), Retries: int(sub.retried.Load())})
		return
	}
	out := &Result{
		Image:   dataset.NewImage(sub.width, sub.height),
		Retries: int(sub.retried.Load()),
	}
	count := 0
	for res := range sub.results {
		blitSpan := p.tel.StartSpan(StageBlit, fmt.Sprintf("tile_%d", res.Index))
		blit(out.Image, res)
		blitSpan.End()
		out.Stats.Hits += res.Stats.Hits
		out.Stats.Steps += res.Stats.Steps
		out.PreStats.Add(res.PreStats)
		count++
	}
	if count != sub.tiles {
		sub.deliver(&Result{Err: fmt.Errorf("cluster: reassembled %d of %d tiles", count, sub.tiles)})
		return
	}
	compSpan := p.tel.StartSpan(StageCompress, "baseline")
	compTSpan := p.tracer.StartSpan(sub.runTrace, StageCompress, "baseline")
	out.Compressed = rice.Encode(out.Image.Pix)
	compSpan.End()
	compTSpan.End()
	if p.met != nil {
		p.met.bytesOut.Add(int64(len(out.Compressed)))
	}
	sub.deliver(out)
}

// runWorker is one member's runner: serve quarantine backoff, then compete
// for queued tiles until removed or the pool closes.
func (p *Pool) runWorker(pw *poolWorker) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		state := pw.state
		wait := time.Until(pw.reopenAt)
		p.mu.Unlock()
		if state == WorkerQuarantined {
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-pw.stop:
					t.Stop()
					return
				case <-p.done:
					t.Stop()
					return
				}
			}
			// Backoff served: go half-open. The next tile is the probe.
			p.mu.Lock()
			if pw.state == WorkerQuarantined {
				pw.state = WorkerProbing
			}
			p.mu.Unlock()
		}
		select {
		case <-pw.stop:
			return
		case <-p.done:
			return
		case j := <-p.jobs:
			p.noteQueueDepth()
			p.processJob(pw, j)
		}
	}
}

// processJob runs one tile on one worker, recording telemetry and routing
// the outcome: success completes the tile, a worker fault charges (or, on
// a circuit trip with healthy peers, drains without charging) the retry
// budget, and a cancelled submission's tile is retired quietly.
//
// Trace shape per attempt: a dispatch span (queue wait) parented under the
// tile's originating dispatch (or the run root on the first attempt), a
// process span under the dispatch, and — on the error paths — retry or
// deadline events under the same dispatch. The process span's context
// rides the worker ctx, so a remote slave's serve span continues the trace
// across the wire. TIDs are the worker's stable admission sequence.
func (p *Pool) processJob(pw *poolWorker, j *poolJob) {
	sub := j.sub
	if sub.ctx.Err() != nil {
		// The submission was abandoned while this tile sat queued; retire
		// it without running (the finalize path reports ctx.Err()).
		sub.account(1)
		return
	}
	ctx := sub.ctx
	var label string
	var start time.Time
	var dispatchTC telemetry.TraceContext
	if p.met != nil {
		label = fmt.Sprintf("tile_%d", j.tile.Index)
		if p.tracer != nil {
			parent := j.origin
			if !parent.Valid() {
				parent = sub.runTrace
			}
			dispatchTC = telemetry.TraceContext{TraceID: parent.TraceID, SpanID: telemetry.NewSpanID()}
			if !j.enqueued.IsZero() {
				p.tracer.Record(telemetry.TraceEvent{
					TraceID: dispatchTC.TraceID, SpanID: dispatchTC.SpanID, ParentID: parent.SpanID,
					Stage: StageDispatch, Label: label, TID: int64(pw.seq),
					Start: j.enqueued, Dur: time.Since(j.enqueued),
					Args: map[string]string{"attempt": fmt.Sprint(j.retries)},
				})
			}
			if !j.origin.Valid() {
				j.origin = dispatchTC
			}
			procTC := telemetry.TraceContext{TraceID: dispatchTC.TraceID, SpanID: telemetry.NewSpanID()}
			ctx = telemetry.ContextWithTrace(ctx, p.tracer, procTC)
		}
		if !j.enqueued.IsZero() {
			wait := time.Since(j.enqueued)
			p.tel.RecordSpan(StageDispatch, label, j.enqueued, wait)
			p.met.dispatchWait.Observe(wait)
		}
		start = time.Now()
	}
	res, err := pw.w.ProcessTile(ctx, cloneTile(j.tile))
	if p.met != nil {
		d := time.Since(start)
		p.tel.RecordSpan(StageProcess, label, start, d)
		p.met.tileProcess.Observe(d)
		pw.hist.Observe(d)
		if p.tracer != nil {
			ev := telemetry.TraceEvent{
				TraceID: dispatchTC.TraceID, ParentID: dispatchTC.SpanID,
				Stage: StageProcess, Label: label, TID: int64(pw.seq),
				Start: start, Dur: d,
			}
			if tc, ok := telemetry.TraceFromContext(ctx); ok {
				ev.SpanID = tc.SpanID
			}
			if err != nil {
				ev.Args = map[string]string{"error": err.Error()}
			}
			p.tracer.Record(ev)
		}
	}
	if err != nil {
		// A cancelled submission is not a worker fault: retire the tile
		// without touching the breaker or the retry budget.
		if sub.ctx.Err() != nil && errors.Is(err, sub.ctx.Err()) {
			if p.tracer != nil && errors.Is(err, context.DeadlineExceeded) {
				p.tracer.Record(telemetry.TraceEvent{
					TraceID: dispatchTC.TraceID, SpanID: telemetry.NewSpanID(), ParentID: dispatchTC.SpanID,
					Stage: "deadline", Label: label, TID: int64(pw.seq),
					Start: start, Dur: time.Since(start),
				})
			}
			sub.account(1)
			return
		}
		if !p.noteFailure(pw) {
			// The failure tripped this worker's circuit (or failed its
			// half-open probe) while healthy peers remain: drain the tile
			// to them without charging its budget, so one bad worker
			// cannot exhaust every tile's retries.
			if p.log != nil {
				p.log.LogAttrs(ctx, slog.LevelWarn, "tile drained after worker quarantine",
					slog.Int("tile", j.tile.Index),
					slog.String("worker", pw.id),
					slog.String("error", err.Error()))
			}
			p.requeue(&poolJob{sub: sub, tile: j.tile, retries: j.retries, enqueued: p.enqueueTime(), origin: j.origin})
			return
		}
		if j.retries < p.retries {
			if p.met != nil {
				p.met.retried.Inc()
				p.tel.RecordSpan(StageRetry, label, start, time.Since(start))
			}
			if p.tracer != nil {
				p.tracer.Record(telemetry.TraceEvent{
					TraceID: dispatchTC.TraceID, SpanID: telemetry.NewSpanID(), ParentID: dispatchTC.SpanID,
					Stage: StageRetry, Label: label, TID: int64(pw.seq),
					Start: start, Dur: time.Since(start),
					Args: map[string]string{"attempt": fmt.Sprint(j.retries), "error": err.Error()},
				})
			}
			if p.log != nil {
				p.log.LogAttrs(ctx, slog.LevelWarn, "tile retry",
					slog.Int("tile", j.tile.Index),
					slog.Int("attempt", j.retries+1),
					slog.String("worker", pw.id),
					slog.String("error", err.Error()))
			}
			sub.retried.Add(1)
			p.requeue(&poolJob{sub: sub, tile: j.tile, retries: j.retries + 1, enqueued: p.enqueueTime(), origin: j.origin})
			return
		}
		if p.met != nil {
			p.met.failed.Inc()
		}
		if p.log != nil {
			p.log.LogAttrs(ctx, slog.LevelError, "tile failed permanently",
				slog.Int("tile", j.tile.Index),
				slog.Int("attempts", j.retries+1),
				slog.String("worker", pw.id),
				slog.String("error", err.Error()))
		}
		sub.fail(fmt.Errorf("cluster: tile %d failed permanently: %w", j.tile.Index, err))
		return
	}
	p.noteSuccess(pw)
	if p.met != nil {
		p.met.completed.Inc()
	}
	sub.results <- res
	sub.account(1)
}

// requeue puts a job back on the shared queue without blocking the calling
// runner: when the queue is full, a goroutine waits out the contention (or
// the job's submission dying, or pool shutdown). Blocking the runner here
// would deadlock once every runner held a requeue against a full queue.
func (p *Pool) requeue(j *poolJob) {
	select {
	case p.jobs <- j:
		p.noteQueueDepth()
		return
	default:
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		select {
		case p.jobs <- j:
			p.noteQueueDepth()
		case <-j.sub.ctx.Done():
			j.sub.account(1)
		case <-p.done:
			j.sub.fail(errPoolClosed)
		}
	}()
}

// noteFailure advances pw's breaker after a worker fault and reports
// whether the failure charges the tile's retry budget. A trip or probe
// failure is uncharged while healthy peers remain (the tile drains to
// them); with none left every failure charges, so a fully-broken pool
// still terminates instead of cycling tiles forever.
func (p *Pool) noteFailure(pw *poolWorker) (charge bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wasProbe := pw.state == WorkerProbing
	pw.consecutive++
	tripped := false
	if wasProbe || (pw.state == WorkerHealthy && pw.consecutive >= p.breakerThreshold) {
		if pw.backoff == 0 {
			pw.backoff = p.backoffBase
		} else {
			pw.backoff *= 2
			if pw.backoff > p.backoffMax {
				pw.backoff = p.backoffMax
			}
		}
		pw.reopenAt = time.Now().Add(pw.backoff)
		pw.state = WorkerQuarantined
		tripped = true
		if p.met != nil {
			p.met.circuitOpened.Inc()
		}
		p.updateGaugesLocked()
		if p.log != nil {
			p.log.LogAttrs(context.Background(), slog.LevelWarn, "worker quarantined",
				slog.String("worker", pw.id),
				slog.Int("consecutive_failures", pw.consecutive),
				slog.Duration("backoff", pw.backoff),
				slog.Bool("probe", wasProbe))
		}
	}
	return !tripped || p.healthyLocked() == 0
}

// noteSuccess resets pw's breaker; a half-open probe success readmits the
// worker.
func (p *Pool) noteSuccess(pw *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pw.consecutive = 0
	if pw.state == WorkerHealthy {
		return
	}
	pw.state = WorkerHealthy
	pw.backoff = 0
	if p.met != nil {
		p.met.circuitClosed.Inc()
	}
	p.updateGaugesLocked()
	if p.log != nil {
		p.log.LogAttrs(context.Background(), slog.LevelInfo, "worker readmitted after successful probe",
			slog.String("worker", pw.id))
	}
}

func (p *Pool) healthyLocked() int {
	n := 0
	for _, pw := range p.workers {
		if pw.state == WorkerHealthy {
			n++
		}
	}
	return n
}

// updateGaugesLocked refreshes the membership gauges; probing workers
// count as quarantined until a probe succeeds.
func (p *Pool) updateGaugesLocked() {
	if p.met == nil {
		return
	}
	healthy := p.healthyLocked()
	p.met.workers.Set(float64(len(p.workers)))
	p.met.healthy.Set(float64(healthy))
	p.met.quarantined.Set(float64(len(p.workers) - healthy))
}

func (p *Pool) noteQueueDepth() {
	if p.met != nil {
		p.met.queueDepth.Set(float64(len(p.jobs)))
	}
}

func (p *Pool) enqueueTime() time.Time {
	if p.met == nil {
		return time.Time{}
	}
	return time.Now()
}
