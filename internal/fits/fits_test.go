package fits

import (
	"errors"
	"strings"
	"testing"

	"spaceproc/internal/dataset"
	"spaceproc/internal/rng"
)

func testImage(t *testing.T, w, h int, seed uint64) *dataset.Image {
	t.Helper()
	im := dataset.NewImage(w, h)
	src := rng.New(seed)
	for i := range im.Pix {
		im.Pix[i] = uint16(src.Uint32())
	}
	return im
}

func TestImageRoundTrip(t *testing.T) {
	im := testImage(t, 37, 21, 1)
	raw := EncodeImage(im)
	if len(raw)%BlockSize != 0 {
		t.Fatalf("file length %d not block-aligned", len(raw))
	}
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Image()
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 37 || back.Height != 21 {
		t.Fatalf("geometry %dx%d", back.Width, back.Height)
	}
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, im.Pix[i], back.Pix[i])
		}
	}
}

func TestImageRoundTripExtremes(t *testing.T) {
	im := dataset.NewImage(4, 1)
	im.Pix = []uint16{0, 1, 32768, 65535}
	f, err := Decode(EncodeImage(im))
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Image()
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatalf("extreme pixel %d: %d != %d", i, im.Pix[i], back.Pix[i])
		}
	}
}

func TestCubeRoundTrip(t *testing.T) {
	c := dataset.NewCube(9, 7, 3)
	src := rng.New(2)
	for i := range c.Data {
		c.Data[i] = float32(src.Normal(1e7, 3e6))
	}
	f, err := Decode(EncodeCube(c))
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 9 || back.Height != 7 || back.Bands != 3 {
		t.Fatalf("geometry %dx%dx%d", back.Width, back.Height, back.Bands)
	}
	for i := range c.Data {
		if c.Data[i] != back.Data[i] {
			t.Fatalf("sample %d: %v != %v", i, c.Data[i], back.Data[i])
		}
	}
}

func TestHeaderAccessors(t *testing.T) {
	var h Header
	h.Set("NAXIS", "2", "axes")
	h.Set("NAXIS", "3", "")
	if v, ok := h.Get("NAXIS"); !ok || v != "3" {
		t.Fatalf("Get after Set-overwrite = %q,%v", v, ok)
	}
	if len(h.Cards) != 1 {
		t.Fatalf("Set duplicated the card: %d cards", len(h.Cards))
	}
	if _, ok := h.Get("MISSING"); ok {
		t.Fatal("Get on missing keyword returned ok")
	}
	if _, err := h.GetInt("MISSING"); err == nil {
		t.Fatal("GetInt on missing keyword should error")
	}
	h.Set("BAD", "xyz", "")
	if _, err := h.GetInt("BAD"); err == nil {
		t.Fatal("GetInt on non-integer should error")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage should not decode")
	}
	im := testImage(t, 8, 8, 3)
	raw := EncodeImage(im)
	if _, err := Decode(raw[:BlockSize]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated data: err = %v, want ErrTruncated", err)
	}
	// No END card at all.
	noEnd := []byte(strings.Repeat(" ", 2*BlockSize))
	if _, err := Decode(noEnd); !errors.Is(err, ErrBadHeader) {
		t.Errorf("no END: err = %v, want ErrBadHeader", err)
	}
}

func TestDecodeRejectsBadGeometry(t *testing.T) {
	var h Header
	h.Set("SIMPLE", "T", "")
	h.Set("BITPIX", "16", "")
	h.Set("NAXIS", "2", "")
	h.Set("NAXIS1", "0", "")
	h.Set("NAXIS2", "4", "")
	raw := assemble(h, make([]byte, 0))
	if _, err := Decode(raw); !errors.Is(err, ErrBadHeader) {
		t.Errorf("zero axis: err = %v, want ErrBadHeader", err)
	}
}

func TestImageWrongShape(t *testing.T) {
	c := dataset.NewCube(4, 4, 2)
	f, err := Decode(EncodeCube(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Image(); err == nil {
		t.Error("Image() on a cube file should error")
	}
	im := testImage(t, 4, 4, 4)
	f2, err := Decode(EncodeImage(im))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Cube(); err == nil {
		t.Error("Cube() on an image file should error")
	}
}

func TestSanityCleanHeaderNoIssues(t *testing.T) {
	raw := EncodeImage(testImage(t, 16, 16, 5))
	rep, out := SanityCheck(raw)
	if len(rep.Issues) != 0 || rep.Fatal {
		t.Fatalf("clean header produced issues: %+v", rep)
	}
	if string(out) != string(raw) {
		t.Fatal("clean header was modified")
	}
}

func TestSanityRepairsDamagedKeyword(t *testing.T) {
	raw := EncodeImage(testImage(t, 16, 16, 6))
	// Find the NAXIS1 card and flip one bit in its keyword.
	idx := strings.Index(string(raw[:BlockSize]), "NAXIS1")
	if idx < 0 {
		t.Fatal("NAXIS1 card not found")
	}
	damaged := append([]byte(nil), raw...)
	damaged[idx] ^= 0x02 // 'N' -> 'L'
	if _, err := Decode(damaged); err == nil {
		t.Fatal("damage did not break decoding; test is vacuous")
	}
	rep, out := SanityCheck(damaged)
	if rep.Fatal {
		t.Fatalf("repair failed: %+v", rep.Issues)
	}
	found := false
	for _, is := range rep.Issues {
		if is.Kind == IssueDamagedKeyword && is.Repaired {
			found = true
		}
	}
	if !found {
		t.Fatalf("no keyword repair recorded: %+v", rep.Issues)
	}
	if _, err := Decode(out); err != nil {
		t.Fatalf("repaired header still undecodable: %v", err)
	}
}

func TestSanityRepairsIllegalBitpix(t *testing.T) {
	raw := EncodeImage(testImage(t, 16, 16, 7))
	hdr := string(raw[:BlockSize])
	idx := strings.Index(hdr, "BITPIX")
	if idx < 0 {
		t.Fatal("BITPIX card not found")
	}
	// The value field is right-aligned in columns 10..30 of the card;
	// find the "16" and damage the '1' (0x31 -> 0x33 = '3', yielding 36).
	card := raw[idx : idx+CardSize]
	vIdx := strings.Index(string(card), "  16")
	if vIdx < 0 {
		t.Fatal("BITPIX value not found")
	}
	damaged := append([]byte(nil), raw...)
	damaged[idx+vIdx+2] ^= 0x02
	rep, out := SanityCheck(damaged)
	fixed := false
	for _, is := range rep.Issues {
		if is.Kind == IssueIllegalBitpix && is.Repaired {
			fixed = true
		}
	}
	if !fixed {
		t.Fatalf("illegal BITPIX not repaired: %+v", rep.Issues)
	}
	f, err := Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Bitpix != BitpixInt16 {
		t.Fatalf("repaired BITPIX = %d, want 16", f.Bitpix)
	}
}

func TestSanityRepairsAxisFromDataLength(t *testing.T) {
	raw := EncodeImage(testImage(t, 32, 16, 8))
	hdr := string(raw[:BlockSize])
	idx := strings.Index(hdr, "NAXIS2")
	if idx < 0 {
		t.Fatal("NAXIS2 card not found")
	}
	card := raw[idx : idx+CardSize]
	vIdx := strings.LastIndex(string(card[:31]), "16")
	if vIdx < 0 {
		t.Fatal("NAXIS2 value not found")
	}
	damaged := append([]byte(nil), raw...)
	damaged[idx+vIdx] = '9' // 16 -> 96

	// Without application knowledge the padding window admits many axis
	// values, so the damage is flagged but not repaired.
	repBlind, _ := SanityCheck(damaged)
	for _, is := range repBlind.Issues {
		if is.Kind == IssueGeometryMismatch && is.Repaired {
			t.Fatalf("blind sanity check should not guess an ambiguous repair: %+v", is)
		}
	}

	// With the application's expected tile geometry the repair is exact.
	rep, out := SanityCheck(damaged, WithExpectedAxes(32, 16))
	fixed := false
	for _, is := range rep.Issues {
		if is.Kind == IssueGeometryMismatch && is.Repaired {
			fixed = true
		}
	}
	if !fixed {
		t.Fatalf("axis damage not repaired: %+v", rep.Issues)
	}
	f, err := Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Axes[0] != 32 || f.Axes[1] != 16 {
		t.Fatalf("repaired geometry %v, want [32 16]", f.Axes)
	}
}

func TestSanityRepairsNonPrintable(t *testing.T) {
	raw := EncodeImage(testImage(t, 8, 8, 9))
	damaged := append([]byte(nil), raw...)
	// Set the high bit of a comment byte in the SIMPLE card.
	idx := strings.Index(string(raw[:BlockSize]), "conforms")
	if idx < 0 {
		t.Fatal("comment not found")
	}
	damaged[idx] |= 0x80
	rep, out := SanityCheck(damaged)
	if rep.Fatal {
		t.Fatal("non-printable byte made header fatal")
	}
	found := false
	for _, is := range rep.Issues {
		if is.Kind == IssueNonPrintable && is.Repaired {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-printable byte not reported: %+v", rep.Issues)
	}
	if _, err := Decode(out); err != nil {
		t.Fatalf("repaired header undecodable: %v", err)
	}
}

func TestSanityFatalOnUnrepairable(t *testing.T) {
	rep, _ := SanityCheck([]byte(strings.Repeat("\x00", BlockSize)))
	if !rep.Fatal {
		t.Fatal("all-zero header should be fatal")
	}
}

func TestNearestKeyword(t *testing.T) {
	if kw, changed := nearestKeyword("SIMPLE"); changed || kw != "SIMPLE" {
		t.Errorf("exact keyword changed: %q %v", kw, changed)
	}
	if kw, changed := nearestKeyword("SIMPLF"); !changed || kw != "SIMPLE" {
		t.Errorf("1-bit damage not repaired: %q %v", kw, changed)
	}
	if _, changed := nearestKeyword("QQQQQQ"); changed {
		t.Error("garbage keyword should not be force-mapped")
	}
}

func TestIssueKindString(t *testing.T) {
	kinds := []IssueKind{IssueNonPrintable, IssueDamagedKeyword, IssueIllegalBitpix, IssueGeometryMismatch, IssueBadValue, IssueKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestSanitySurvivesRandomHeaderFlips(t *testing.T) {
	// Fuzz-ish: random single-bit header damage must never panic and must
	// either repair or flag fatal.
	raw := EncodeImage(testImage(t, 16, 16, 10))
	src := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		damaged := append([]byte(nil), raw...)
		bit := src.Intn(BlockSize * 8)
		damaged[bit/8] ^= 1 << uint(bit%8)
		rep, out := SanityCheck(damaged)
		if !rep.Fatal {
			if _, err := Decode(out); err != nil {
				// Repairs that pass sanity must decode.
				t.Fatalf("trial %d: non-fatal report but decode failed: %v", trial, err)
			}
		}
	}
}
