// Package synth generates the evaluation datasets. It stands in for two
// artifacts the paper used but that are not publicly available (see
// DESIGN.md section 2): the NGST Mission Simulator outputs, replaced by the
// paper's own Gaussian temporal model (Section 2.2.1, eq. 1) plus a full
// scene/readout simulator with cosmic-ray hits; and the OTIS field datasets
// "Blob", "Stripe" and "Spots", replaced by procedural generators that
// reproduce the morphology the paper describes for each.
package synth

import (
	"fmt"

	"spaceproc/internal/dataset"
	"spaceproc/internal/rng"
)

// PixelMax is the largest representable 16-bit pixel value; the paper's
// sigma=8000 experiment notes "overflows are truncated to the maximum
// value".
const PixelMax = 0xFFFF

// SeriesConfig parameterizes the Gaussian temporal model of Section 2.2.1:
// Pi(i+1) = Pi(i) + Theta_i with Theta_i ~ N(0, Sigma).
type SeriesConfig struct {
	// N is the number of temporal variants (readouts); the paper's
	// evaluation uses 64.
	N int
	// Initial is Pi(1). The paper's Section 6 experiments fix it at 27000.
	Initial uint16
	// Sigma is the standard deviation of the step Theta_i. Sigma = 0
	// yields a constant series.
	Sigma float64
}

// Validate reports whether the configuration is usable.
func (c SeriesConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("synth: series length N must be positive, got %d", c.N)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("synth: sigma must be non-negative, got %v", c.Sigma)
	}
	return nil
}

// GaussianSeries draws one temporal series from the model. Values are
// clamped to [0, PixelMax] as the paper does for turbulent datasets.
func GaussianSeries(cfg SeriesConfig, src *rng.Source) (dataset.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make(dataset.Series, cfg.N)
	cur := float64(cfg.Initial)
	out[0] = cfg.Initial
	for i := 1; i < cfg.N; i++ {
		cur += src.Normal(0, cfg.Sigma)
		out[i] = clampPixel(cur)
	}
	return out, nil
}

// GaussianStack draws an independent Gaussian series for every coordinate
// of a width x height detector fragment, with per-pixel initial values
// drawn uniformly around cfg.Initial +- spread (clamped). This reproduces a
// fragment of an NMS-style dataset with spatially varying baseline
// intensity but the paper's temporal statistics.
func GaussianStack(cfg SeriesConfig, width, height int, spread float64, src *rng.Source) (*dataset.Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("synth: invalid stack dimensions %dx%d", width, height)
	}
	s := dataset.NewStack(cfg.N, width, height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			pcfg := cfg
			if spread > 0 {
				pcfg.Initial = clampPixel(float64(cfg.Initial) + (src.Float64()*2-1)*spread)
			}
			ser, err := GaussianSeries(pcfg, src)
			if err != nil {
				return nil, err
			}
			s.SetSeriesAt(x, y, ser)
		}
	}
	return s, nil
}

func clampPixel(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > PixelMax {
		return PixelMax
	}
	return uint16(v + 0.5)
}
