package perm

import (
	"testing"
)

// domains exercises the shapes that break naive Feistel constructions:
// tiny, odd, prime, exact powers of two, and one just past a power of two
// (worst cycle-walk ratio).
var domains = []uint64{1, 2, 3, 5, 13, 16, 17, 64, 101, 127, 128, 129, 1000, 1024, 4099, 50000, 65536, 65537}

func TestPermIsBijection(t *testing.T) {
	for _, n := range domains {
		p, err := New(n, 42, 0)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.At(i)
			if v >= n {
				t.Fatalf("N=%d: At(%d) = %d out of domain", n, i, v)
			}
			if seen[v] {
				t.Fatalf("N=%d: At(%d) = %d already produced", n, i, v)
			}
			seen[v] = true
			if got := p.Inverse(v); got != i {
				t.Fatalf("N=%d: Inverse(At(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestPermDeterministicAndKeyed(t *testing.T) {
	const n = 10000
	a, _ := New(n, 7, 4)
	b, _ := New(n, 7, 4)
	c, _ := New(n, 8, 4)
	differ := false
	for i := uint64(0); i < n; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("same (seed, rounds) disagree at %d", i)
		}
		if a.At(i) != c.At(i) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("seeds 7 and 8 produced the identical permutation")
	}
	d, _ := New(n, 7, 8)
	differ = false
	for i := uint64(0); i < n; i++ {
		if a.At(i) != d.At(i) {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("round counts 4 and 8 produced the identical permutation")
	}
}

func TestPermHugeDomainRoundTrip(t *testing.T) {
	// Domains too large to enumerate still need in-domain outputs and an
	// exact inverse; spot-check a spread of indices including both ends.
	for _, n := range []uint64{1_000_000_007, 1 << 40, 1<<62 + 12345} {
		p, err := New(n, 99, 0)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		for _, i := range []uint64{0, 1, 2, 63, 64, n / 3, n / 2, n - 2, n - 1} {
			v := p.At(i)
			if v >= n {
				t.Fatalf("N=%d: At(%d) = %d out of domain", n, i, v)
			}
			if got := p.Inverse(v); got != i {
				t.Fatalf("N=%d: Inverse(At(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestShardsPartitionDomain(t *testing.T) {
	const n = 4099 // prime, so no shard plan divides it evenly
	p, _ := New(n, 5, 0)
	want := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		want[p.At(i)] = true
	}
	for _, w := range []int{1, 2, 4, 7, 16, 64} {
		got := make(map[uint64]bool, n)
		for k := 0; k < w; k++ {
			it := p.Shard(k, w)
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if got[v] {
					t.Fatalf("w=%d: site %d yielded twice", w, v)
				}
				got[v] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("w=%d: %d sites, want %d", w, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("w=%d: site %d missing", w, v)
			}
		}
	}
}

func TestShardIterBookkeeping(t *testing.T) {
	p, _ := New(100, 1, 0)
	it := p.Shard(3, 8)
	if it.Index() != 3 {
		t.Fatalf("fresh iter index %d, want 3", it.Index())
	}
	count := uint64(0)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	// Indices 3, 11, ..., 99: 13 draws.
	if count != 13 || it.Visited() != 13 {
		t.Fatalf("shard 3/8 of 100 yielded %d (visited %d), want 13", count, it.Visited())
	}
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator yielded another site")
	}
	// A shard whose first index is already outside a tiny domain is empty.
	tiny, _ := New(2, 1, 0)
	if _, ok := tiny.Shard(3, 8).Next(); ok {
		t.Fatal("shard 3/8 of a 2-site domain must be empty")
	}
}

func TestPermErrorsAndPanics(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Error("N=0 must be rejected")
	}
	if _, err := New(10, 1, -1); err == nil {
		t.Error("negative rounds must be rejected")
	}
	p, err := New(10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds() != DefaultRounds {
		t.Errorf("rounds = %d, want default %d", p.Rounds(), DefaultRounds)
	}
	if p.N() != 10 {
		t.Errorf("N() = %d", p.N())
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("At out of domain", func() { p.At(10) })
	mustPanic("Inverse out of domain", func() { p.Inverse(10) })
	mustPanic("shard k>=w", func() { p.Shard(2, 2) })
	mustPanic("shard w=0", func() { p.Shard(0, 0) })
	mustPanic("shard k<0", func() { p.Shard(-1, 4) })
}

// TestPermPrefixUniformity is the statistical sanity gate: enumerating a
// prefix of the permutation must spread its outputs uniformly over the
// domain. Bucket the first 10% of sites into 16 equal sub-ranges and run
// a chi-square test against the uniform expectation. The seed is fixed,
// so the statistic is a constant of the implementation — the test guards
// against a degenerate round function, not against unlucky draws.
//
// (Enumerating the FULL domain is trivially uniform — it is a
// permutation — which is why only a prefix is informative.)
func TestPermPrefixUniformity(t *testing.T) {
	// Critical value for chi-square with 15 degrees of freedom at
	// p = 0.001; a healthy permutation sits far below it.
	const critical = 37.70
	const buckets = 16
	for _, n := range []uint64{4096, 10000, 999983, 1 << 20} {
		p, err := New(n, 20030622, 0)
		if err != nil {
			t.Fatal(err)
		}
		samples := n / 10
		counts := make([]uint64, buckets)
		for i := uint64(0); i < samples; i++ {
			// Bucket by sub-range: b = v * buckets / n, computed without
			// overflow for the domain sizes used here.
			counts[p.At(i)*buckets/n]++
		}
		expected := float64(samples) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > critical {
			t.Errorf("N=%d: chi-square %.2f over %d buckets exceeds %.2f (prefix of %d sites not uniform)",
				n, chi2, buckets, critical, samples)
		}
	}
}

func BenchmarkPermAt(b *testing.B) {
	p, _ := New(1_000_000_007, 1, 0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.At(uint64(i) % p.N())
	}
	_ = sink
}
