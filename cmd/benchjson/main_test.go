package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spaceproc
cpu: Imaginary Octo Core 3000
BenchmarkVote/lambda=80-8         1201    987654 ns/op    120 B/op    3 allocs/op
BenchmarkPipeline-8                 10   1.5e+08 ns/op
PASS
ok      spaceproc       2.1s
`

func TestParseSample(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-echo=false"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	r := doc.Benchmarks[0]
	if r.Name != "BenchmarkVote/lambda=80-8" || r.Iterations != 1201 ||
		r.NsPerOp != 987654 || r.BytesPerOp != 120 || r.AllocsPerOp != 3 {
		t.Fatalf("bad record: %+v", r)
	}
	if doc.Benchmarks[1].NsPerOp != 1.5e8 || doc.Benchmarks[1].BytesPerOp != 0 {
		t.Fatalf("bad record: %+v", doc.Benchmarks[1])
	}
	// Parsed headers override the runtime fallback; the rest of the meta
	// block comes from the converting process.
	m := doc.Meta
	if m.GOOS != "linux" || m.GOARCH != "amd64" || m.CPU != "Imaginary Octo Core 3000" {
		t.Fatalf("bad parsed meta: %+v", m)
	}
	if m.GoVersion != runtime.Version() || m.GOMAXPROCS < 1 || m.NumCPU < 1 {
		t.Fatalf("bad runtime meta: %+v", m)
	}
}

func TestOutFile(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-out", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkVote") {
		t.Fatal("echo suppressed unexpectedly")
	}
	var doc document
	data := readFile(t, path)
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("file is not JSON: %v", err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d records, want 2", len(doc.Benchmarks))
	}
}

func TestEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-echo=false"}, strings.NewReader("PASS\n"), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Benchmarks == nil || len(doc.Benchmarks) != 0 {
		t.Fatalf("want empty benchmarks array, got %+v", doc.Benchmarks)
	}
	if doc.Meta.GoVersion == "" {
		t.Fatalf("meta missing: %+v", doc.Meta)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkVote/lambda=80-8": "BenchmarkVote/lambda=80",
		"BenchmarkVote/lambda=80":   "BenchmarkVote/lambda=80",
		"BenchmarkPipeline-16":      "BenchmarkPipeline",
		"BenchmarkPipeline":         "BenchmarkPipeline",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Fatalf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareSpeedupAndLegacy drives -compare with a legacy bare-array old
// artifact against a current-format new one captured at different
// GOMAXPROCS, checking the speedup report and exit status.
func TestCompareSpeedupAndLegacy(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/old.json", `[
 {"name":"BenchmarkVote-8","iterations":100,"ns_per_op":6000},
 {"name":"BenchmarkOldOnly-8","iterations":100,"ns_per_op":50}
]`)
	writeFile(t, dir+"/new.json", `{"meta":{"go_version":"go1.24.0"},"benchmarks":[
 {"name":"BenchmarkVote-16","iterations":100,"ns_per_op":1000},
 {"name":"BenchmarkNewOnly-16","iterations":100,"ns_per_op":70}
]}`)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-compare", dir + "/old.json", dir + "/new.json"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "6.00x faster") {
		t.Fatalf("speedup not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "OldOnly") || strings.Contains(out.String(), "NewOnly") {
		t.Fatalf("unpaired benchmarks reported:\n%s", out.String())
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/old.json", `[
 {"name":"BenchmarkA-8","iterations":100,"ns_per_op":1000},
 {"name":"BenchmarkB-8","iterations":100,"ns_per_op":1000}
]`)
	writeFile(t, dir+"/new.json", `[
 {"name":"BenchmarkA-8","iterations":100,"ns_per_op":1050},
 {"name":"BenchmarkB-8","iterations":100,"ns_per_op":1500}
]`)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-compare", dir + "/old.json", dir + "/new.json"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "BenchmarkB") {
		t.Fatalf("regression report missing:\n%s", out.String())
	}
	if strings.Count(out.String(), "REGRESSION") != 1 {
		t.Fatalf("5%% slowdown misflagged at default threshold:\n%s", out.String())
	}

	// The same pair passes at a 60% threshold.
	out.Reset()
	if err := run(context.Background(), []string{"-compare", "-threshold", "60", dir + "/old.json", dir + "/new.json"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("threshold=60 still failed: %v\n%s", err, out.String())
	}
}

func TestCompareNoOverlap(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/old.json", `[{"name":"BenchmarkA-8","iterations":1,"ns_per_op":10}]`)
	writeFile(t, dir+"/new.json", `[{"name":"BenchmarkZ-8","iterations":1,"ns_per_op":10}]`)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-compare", dir + "/old.json", dir + "/new.json"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("disjoint artifacts compared successfully")
	}
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "benchjson ") {
		t.Fatalf("version output %q", out.String())
	}
}
