package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"spaceproc"
)

// notifyWriter accumulates output and signals once per line written.
type notifyWriter struct {
	mu    sync.Mutex
	sb    strings.Builder
	lines chan string
}

func newNotifyWriter() *notifyWriter {
	return &notifyWriter{lines: make(chan string, 64)}
}

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.sb.Write(p)
	w.mu.Unlock()
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		select {
		case w.lines <- line:
		default:
		}
	}
	return len(p), nil
}

func (w *notifyWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// await returns the first line containing substr, or fails the test.
func (w *notifyWriter) await(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line := <-w.lines:
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("never saw %q in output:\n%s", substr, w.String())
		}
	}
}

// startDaemon boots one in-process fleet member.
func startDaemon(t *testing.T) string {
	t.Helper()
	pool, err := spaceproc.NewWorkerPool(spaceproc.WithPoolTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	for i := 0; i < 2; i++ {
		lw, err := spaceproc.NewLocalWorker(nil, spaceproc.DefaultCRConfig())
		if err != nil {
			t.Fatal(err)
		}
		pool.AddWorker(lw)
	}
	daemon, err := spaceproc.NewDaemon(pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Close)
	addr, err := daemon.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestVersionFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "spaceproc-router ") {
		t.Fatalf("version output %q", sb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("want flag error")
	}
}

func TestRequiresNodes(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Fatal("want error without -nodes")
	}
}

func TestParseNodes(t *testing.T) {
	fleet, err := parseNodes("10.0.0.1:9035=10.0.0.1:9100, 10.0.0.2:9035 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 2 {
		t.Fatalf("parsed %d nodes, want 2", len(fleet))
	}
	if fleet[0].Addr != "10.0.0.1:9035" || fleet[0].Health != "10.0.0.1:9100" {
		t.Fatalf("node 0 = %+v", fleet[0])
	}
	if fleet[1].Addr != "10.0.0.2:9035" || fleet[1].Health != "" {
		t.Fatalf("node 1 = %+v", fleet[1])
	}
	for _, bad := range []string{"", " , ", "=h:1", "a:1="} {
		if _, err := parseNodes(bad); err == nil {
			t.Fatalf("parseNodes(%q) should error", bad)
		}
	}
}

// TestRouteAndDrain boots the router over an in-process daemon, round-
// trips one baseline through it, cancels the root context (the SIGTERM
// path), and proves run exits through the drain.
func TestRouteAndDrain(t *testing.T) {
	daddr := startDaemon(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newNotifyWriter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-metrics", "127.0.0.1:0",
			"-nodes", daddr,
			"-probe-interval", "20ms",
			"-drain-timeout", "10s",
		}, out)
	}()

	line := out.await(t, "routing on ")
	raddr := strings.TrimSpace(strings.TrimPrefix(line, "routing on "))
	out.await(t, "fleet of 1 node(s)")
	out.await(t, "metrics on http://")

	client, err := spaceproc.Dial(raddr, spaceproc.WithServeClientID("router-test"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stack := spaceproc.NewStack(4, 32, 32)
	for _, f := range stack.Frames {
		for i := range f.Pix {
			f.Pix[i] = uint16(500 + i%11)
		}
	}
	res, err := client.Process(context.Background(), stack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image == nil || len(res.Compressed) == 0 {
		t.Fatalf("incomplete result: %+v", res)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("router never drained:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
}
