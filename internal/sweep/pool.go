package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spaceproc/internal/cluster"
	"spaceproc/internal/crreject"
	"spaceproc/internal/dataset"
	"spaceproc/internal/metrics"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
	"spaceproc/internal/telemetry"
)

// The pool experiment measures the scheduler's contribution to fault
// tolerance directly: a cluster where one node fails a fraction of its
// tiles must still produce bit-identical science (the Figure 1 pipeline's
// whole premise), paying only in retries and quarantine cycles. It also
// exercises the pool as a long-lived object the way a flight system would:
// one pool serves every point of the sweep, with the faulty node swapped
// in and out through dynamic membership.

// poolFaultAxis is the per-tile failure probability of the crashy worker.
var poolFaultAxis = []float64{0, 0.25, 0.5, 1}

// PoolSweepConfig parameterizes the worker-fault sweep.
type PoolSweepConfig struct {
	// Trials is the number of baselines submitted per measured point; they
	// are pipelined through the pool concurrently.
	Trials int
	// Workers is the healthy worker count (the crashy node is added on
	// top of these).
	Workers int
	// TileSize is the fragment edge length.
	TileSize int
	// Scene is the per-baseline synthesis configuration.
	Scene synth.SceneConfig
	// Telemetry, when non-nil, receives the pool's scheduler gauges and
	// circuit counters; when nil the experiment uses a private registry
	// (it needs the circuit counters for its own series).
	Telemetry *telemetry.Registry
}

// DefaultPoolSweepConfig returns a small sweep suitable for tests and the
// experiments binary.
func DefaultPoolSweepConfig() PoolSweepConfig {
	scene := synth.DefaultSceneConfig()
	scene.Width, scene.Height = 64, 64
	scene.Readouts = 16
	return PoolSweepConfig{Trials: 4, Workers: 3, TileSize: 32, Scene: scene}
}

// Validate reports whether the configuration is usable.
func (c PoolSweepConfig) Validate() error {
	switch {
	case c.Trials <= 0:
		return fmt.Errorf("sweep: trials must be positive, got %d", c.Trials)
	case c.Workers <= 0:
		return fmt.Errorf("sweep: workers must be positive, got %d", c.Workers)
	case c.TileSize <= 0:
		return fmt.Errorf("sweep: tile size must be positive, got %d", c.TileSize)
	}
	return c.Scene.Validate()
}

// crashyWorker fails each tile with a seeded probability, standing in for
// a flaky slave node.
type crashyWorker struct {
	inner cluster.Worker
	prob  float64

	mu  sync.Mutex
	src *rng.Source
}

func (w *crashyWorker) ProcessTile(ctx context.Context, t dataset.Tile) (cluster.TileResult, error) {
	w.mu.Lock()
	roll := w.src.Float64()
	w.mu.Unlock()
	if roll < w.prob {
		return cluster.TileResult{}, errors.New("sweep: injected worker crash")
	}
	return w.inner.ProcessTile(ctx, t)
}

// FigPool sweeps the crashy node's per-tile failure probability and
// reports the science error against a fault-free reference (MeanPsi must
// stay zero — worker faults are masked, not averaged in), the charged
// retries per baseline, and the circuit-open count at each point.
func FigPool(cfg PoolSweepConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "figpool")()
	res := &Result{
		ID:     "pool",
		Title:  "worker-fault tolerance: one crashy node in the shared pool",
		XLabel: "per-tile fault probability",
		YLabel: "MeanPsi / MeanRetries / CircuitOpens",
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	newLocal := func() (cluster.Worker, error) {
		return cluster.NewLocalWorker(nil, crreject.DefaultConfig())
	}
	pool, err := cluster.NewPool(
		cluster.WithPoolTileSize(cfg.TileSize),
		cluster.WithBreaker(2, time.Millisecond, 10*time.Millisecond),
		cluster.WithPoolTelemetry(reg))
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	for i := 0; i < cfg.Workers; i++ {
		w, err := newLocal()
		if err != nil {
			return nil, err
		}
		pool.AddWorker(w)
	}
	// The fault-free comparator pool is built once and reused across every
	// point, exactly like the mission layer's reference pool.
	refPool, err := cluster.NewPool(cluster.WithPoolTileSize(cfg.TileSize))
	if err != nil {
		return nil, err
	}
	defer refPool.Close()
	for i := 0; i < cfg.Workers; i++ {
		w, err := newLocal()
		if err != nil {
			return nil, err
		}
		refPool.AddWorker(w)
	}

	psiSeries := Series{Name: "MeanPsi"}
	retrySeries := Series{Name: "MeanRetries"}
	opensSeries := Series{Name: "CircuitOpens"}
	for pi, pf := range poolFaultAxis {
		inner, err := newLocal()
		if err != nil {
			return nil, err
		}
		crashy := &crashyWorker{inner: inner, prob: pf, src: rng.NewStream(seed, uint64(pi)*997)}
		id := pool.AddWorker(crashy)
		opensBefore := reg.Snapshot().Counters["pipeline_pool_circuit_open_total"]

		type trialOut struct {
			psi     float64
			retries int
			err     error
		}
		outs := make([]trialOut, cfg.Trials)
		var wg sync.WaitGroup
		for trial := 0; trial < cfg.Trials; trial++ {
			wg.Add(1)
			go func(trial int) {
				defer wg.Done()
				sc, err := synth.NewScene(cfg.Scene, rng.NewStream(seed, uint64(pi*cfg.Trials+trial)*2))
				if err != nil {
					outs[trial].err = err
					return
				}
				ref := <-refPool.Submit(context.Background(), sc.Observed)
				if ref.Err != nil {
					outs[trial].err = ref.Err
					return
				}
				flight := <-pool.Submit(context.Background(), sc.Observed)
				if flight.Err != nil {
					outs[trial].err = flight.Err
					return
				}
				outs[trial].psi = metrics.RelativeError16(flight.Image.Pix, ref.Image.Pix)
				outs[trial].retries = flight.Retries
			}(trial)
		}
		wg.Wait()
		if !pool.RemoveWorker(id) {
			return nil, fmt.Errorf("sweep: crashy worker %s vanished from the pool", id)
		}

		var psiAcc, retryAcc metrics.Accumulator
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			psiAcc.Add(o.psi)
			retryAcc.Add(float64(o.retries))
		}
		opens := reg.Snapshot().Counters["pipeline_pool_circuit_open_total"] - opensBefore
		psiSeries.Points = append(psiSeries.Points, Point{X: pf, Y: psiAcc.Mean()})
		retrySeries.Points = append(retrySeries.Points, Point{X: pf, Y: retryAcc.Mean()})
		opensSeries.Points = append(opensSeries.Points, Point{X: pf, Y: float64(opens)})
	}
	res.Series = []Series{psiSeries, retrySeries, opensSeries}
	return res, nil
}
