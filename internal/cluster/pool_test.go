package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"spaceproc/internal/dataset"
	"spaceproc/internal/telemetry"
)

// switchWorker fails every tile while failing is set and delegates to its
// inner worker otherwise — a stand-in for a slave that crashes and is later
// repaired.
type switchWorker struct {
	inner   Worker
	failing atomic.Bool
}

func (w *switchWorker) ProcessTile(ctx context.Context, t dataset.Tile) (TileResult, error) {
	if w.failing.Load() {
		return TileResult{}, errors.New("injected persistent fault")
	}
	return w.inner.ProcessTile(ctx, t)
}

// TestPoolQuarantinesAndReadmitsFailingWorker is the acceptance scenario: a
// pool of 4 workers where one fails every tile must complete a baseline
// bit-identical to a healthy 3-worker pool, quarantine the bad worker
// (visible in the pool gauges and circuit counters), and readmit it via a
// half-open probe once it is repaired.
func TestPoolQuarantinesAndReadmitsFailingWorker(t *testing.T) {
	sc := testScene(t, 41)

	ref, err := NewMaster(localWorkers(t, 3, nil), WithTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(sc.Observed)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	reg := telemetry.NewRegistry()
	pool, err := NewPool(WithPoolTileSize(32), WithPoolRetries(2),
		WithBreaker(2, 2*time.Millisecond, 20*time.Millisecond),
		WithPoolTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range localWorkers(t, 3, nil) {
		pool.AddWorker(w)
	}
	bad := &switchWorker{inner: localWorkers(t, 1, nil)[0]}
	bad.failing.Store(true)
	badID := pool.AddWorker(bad)

	// One 4-tile baseline may hand the bad worker fewer tiles than the trip
	// threshold; keep submitting (every result must stay bit-identical)
	// until its circuit opens.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Snapshot().Counters["pipeline_pool_circuit_open_total"] < 1 {
		res := <-pool.Submit(context.Background(), sc.Observed)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for i := range want.Image.Pix {
			if res.Image.Pix[i] != want.Image.Pix[i] {
				t.Fatalf("pool with failing worker differs from healthy pool at pixel %d", i)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("circuit never opened: %+v", pool.Workers())
		}
	}
	if got := reg.Snapshot().Gauges["pipeline_pool_workers_quarantined"]; got < 1 {
		t.Fatalf("quarantined gauge = %v, want >= 1", got)
	}
	found := false
	for _, ws := range pool.Workers() {
		if ws.ID == badID {
			found = true
			if ws.State == WorkerHealthy {
				t.Fatalf("bad worker %s still healthy: %+v", badID, ws)
			}
		}
	}
	if !found {
		t.Fatalf("bad worker %s missing from status: %+v", badID, pool.Workers())
	}

	// Repair the worker; submissions keep flowing while its backoff expires
	// and a half-open probe succeeds, which must readmit it.
	bad.failing.Store(false)
	deadline = time.Now().Add(30 * time.Second)
	for {
		res := <-pool.Submit(context.Background(), sc.Observed)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if reg.Snapshot().Gauges["pipeline_pool_workers_healthy"] == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never readmitted: %+v", badID, pool.Workers())
		}
	}
	if got := reg.Snapshot().Counters["pipeline_pool_circuit_close_total"]; got < 1 {
		t.Fatalf("circuit close counter = %d, want >= 1 after readmission", got)
	}
}

// TestPoolDrainsTilesWithoutChargingRetries pins the charge policy: a
// failure that trips a worker's circuit while healthy peers remain drains
// the tile to them without spending its retry budget, so a run with a ZERO
// retry budget still completes when one worker fails every tile.
func TestPoolDrainsTilesWithoutChargingRetries(t *testing.T) {
	sc := testScene(t, 42)
	pool, err := NewPool(WithPoolTileSize(32), WithPoolRetries(0),
		WithBreaker(1, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range localWorkers(t, 2, nil) {
		pool.AddWorker(w)
	}
	bad := &switchWorker{inner: nil}
	bad.failing.Store(true)
	pool.AddWorker(bad)

	res := <-pool.Submit(context.Background(), sc.Observed)
	if res.Err != nil {
		t.Fatalf("zero-retry run with a draining worker failed: %v", res.Err)
	}
	if res.Retries != 0 {
		t.Fatalf("drained tiles charged %d retries, want 0", res.Retries)
	}
}

// TestPoolQuarantinesAfterThreshold pins the breaker arithmetic: with a
// threshold of 3, the bad worker's first two failures charge the retry
// budget, the third trips the circuit uncharged, and every later probe
// failure is uncharged too — so the run reports exactly 2 retries.
func TestPoolQuarantinesAfterThreshold(t *testing.T) {
	sc := testScene(t, 43)
	pool, err := NewPool(WithPoolTileSize(32), WithPoolRetries(3),
		WithBreaker(3, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range localWorkers(t, 2, nil) {
		pool.AddWorker(w)
	}
	bad := &switchWorker{inner: nil}
	bad.failing.Store(true)
	badID := pool.AddWorker(bad)

	res := <-pool.Submit(context.Background(), sc.Observed)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Retries != 2 {
		t.Fatalf("run charged %d retries, want exactly 2 (threshold-1)", res.Retries)
	}
	for _, ws := range pool.Workers() {
		if ws.ID != badID {
			continue
		}
		if ws.State == WorkerHealthy {
			t.Fatalf("bad worker not quarantined: %+v", ws)
		}
		if ws.ConsecutiveFailures < 3 {
			t.Fatalf("consecutive failures = %d, want >= 3", ws.ConsecutiveFailures)
		}
	}
}

// TestSubmitBackpressureBlocksWhenQueueFull proves the bounded queue: with
// depth 1 and the only worker wedged, Submit must block enqueueing the
// third tile until the worker drains, instead of buffering arbitrarily.
func TestSubmitBackpressureBlocksWhenQueueFull(t *testing.T) {
	sc := testScene(t, 44) // 64x64 at tile 32 -> 4 tiles
	inner := localWorkers(t, 1, nil)[0]
	sw := &slowWorker{inner: inner, started: make(chan struct{}, 8), release: make(chan struct{})}
	pool, err := NewPool(WithPoolTileSize(32), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.AddWorker(sw)

	returned := make(chan (<-chan *Result), 1)
	go func() { returned <- pool.Submit(context.Background(), sc.Observed) }()
	<-sw.started // tile 0 in flight, tile 1 queued, Submit now blocked on tile 2
	select {
	case <-returned:
		t.Fatal("Submit returned with the queue full: backpressure missing")
	case <-time.After(50 * time.Millisecond):
	}

	close(sw.release)
	var out <-chan *Result
	select {
	case out = <-returned:
	case <-time.After(10 * time.Second):
		t.Fatal("Submit never unblocked after the worker drained")
	}
	res := <-out
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Image == nil || res.Image.Width != 64 {
		t.Fatalf("backpressured run produced malformed output: %+v", res)
	}
}

// TestPoolDynamicMembership exercises runtime add/remove: stable IDs are
// never reused, removal is idempotent, and the pool keeps serving
// submissions across membership churn.
func TestPoolDynamicMembership(t *testing.T) {
	sc := testScene(t, 45)
	pool, err := NewPool(WithPoolTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ws := localWorkers(t, 3, nil)
	ids := make([]string, len(ws))
	for i, w := range ws {
		ids[i] = pool.AddWorker(w)
	}
	if ids[0] != "w1" || ids[1] != "w2" || ids[2] != "w3" {
		t.Fatalf("unexpected worker IDs: %v", ids)
	}
	if res := <-pool.Submit(context.Background(), sc.Observed); res.Err != nil {
		t.Fatal(res.Err)
	}

	if !pool.RemoveWorker(ids[1]) {
		t.Fatalf("RemoveWorker(%s) reported no membership", ids[1])
	}
	if pool.RemoveWorker(ids[1]) {
		t.Fatal("second RemoveWorker of the same ID should report false")
	}
	if pool.Size() != 2 {
		t.Fatalf("size after removal = %d, want 2", pool.Size())
	}
	// A later admission gets a fresh ID; w2 is never reused.
	if id := pool.AddWorker(localWorkers(t, 1, nil)[0]); id != "w4" {
		t.Fatalf("readmission reused or skipped IDs: got %s, want w4", id)
	}
	if res := <-pool.Submit(context.Background(), sc.Observed); res.Err != nil {
		t.Fatal(res.Err)
	}
	var got []string
	for _, ws := range pool.Workers() {
		got = append(got, ws.ID)
	}
	if len(got) != 3 || got[0] != "w1" || got[1] != "w3" || got[2] != "w4" {
		t.Fatalf("membership after churn = %v, want [w1 w3 w4]", got)
	}
}

// TestRemoteWorkerReconnectsWithBackoff covers the transport layer's
// reconnect: after the server dies mid-session (failing the in-flight
// exchange), a replacement listener that comes up a beat later is found by
// the proxy's backoff dial loop on the next call.
func TestRemoteWorkerReconnectsWithBackoff(t *testing.T) {
	sc := testScene(t, 46)
	tiles, err := dataset.Fragment(sc.Observed, 32)
	if err != nil {
		t.Fatal(err)
	}
	inner := localWorkers(t, 1, nil)[0]
	srv := NewServer(inner)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Dial(addr, WithDialBackoff(6, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.ProcessTile(context.Background(), cloneTile(tiles[0])); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// The exchange against the dead server must fail (at-most-once: the
	// proxy never silently replays a tile on a fresh connection).
	if _, err := w.ProcessTile(context.Background(), cloneTile(tiles[1])); err == nil {
		t.Fatal("exchange against a closed server should fail")
	}

	// Bring a replacement up on the same address after a delay shorter than
	// the proxy's total backoff window.
	rebind := make(chan error, 1)
	srv2ch := make(chan *Server, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		srv2 := NewServer(inner)
		if _, err := srv2.Listen(addr); err != nil {
			rebind <- err
			return
		}
		srv2ch <- srv2
		rebind <- nil
	}()
	res, err := w.ProcessTile(context.Background(), cloneTile(tiles[1]))
	if rerr := <-rebind; rerr != nil {
		t.Skipf("could not rebind %s: %v", addr, rerr)
	}
	defer (<-srv2ch).Close()
	if err != nil {
		t.Fatalf("proxy did not reconnect through backoff: %v", err)
	}
	if res.Index != tiles[1].Index {
		t.Fatalf("reconnected exchange returned tile %d, want %d", res.Index, tiles[1].Index)
	}
}
