// Quickstart: damage a temporal pixel series with memory bit flips and
// repair it with the paper's dynamic preprocessing algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spaceproc"
)

func main() {
	// An NGST baseline reads each detector coordinate 64 times; the
	// Gaussian temporal model of the paper (eq. 1) generates one such
	// series.
	ideal, err := spaceproc.GaussianSeries(spaceproc.SeriesConfig{
		N:       spaceproc.BaselineReadouts,
		Initial: 27000,
		Sigma:   250,
	}, spaceproc.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}

	// While the raw data sits in memory, radiation flips bits: each bit
	// flips independently with probability Gamma0 (the uncorrelated
	// fault model of Section 2.2.2).
	damaged := ideal.Clone()
	flips := spaceproc.Uncorrelated{Gamma0: 0.01}.InjectSeries(damaged, spaceproc.NewRNGStream(42, 1))
	before := spaceproc.SeriesError(damaged, ideal)
	fmt.Printf("injected %d bit flips; relative error Psi = %.5f\n", flips, before)

	// Algo_NGST (Algorithm 1) identifies temporally non-conforming bits
	// by XOR voting against each pixel's Upsilon nearest readouts, with
	// thresholds derived dynamically from the dataset itself.
	pre, err := spaceproc.NewAlgoNGST(spaceproc.DefaultNGSTConfig())
	if err != nil {
		log.Fatal(err)
	}
	pre.ProcessSeries(damaged)

	after := spaceproc.SeriesError(damaged, ideal)
	fmt.Printf("after %s: Psi = %.5f (gain %.1fx)\n", pre.Name(), after, spaceproc.Gain(before, after))
}
