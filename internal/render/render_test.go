package render

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spaceproc/internal/dataset"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

func TestGrayPGMHeaderAndScaling(t *testing.T) {
	var buf bytes.Buffer
	field := []float64{0, 5, 10, 2.5}
	if err := GrayPGM(&buf, field, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n2 2\n255\n") {
		t.Fatalf("bad header: %q", out[:12])
	}
	pix := out[len(out)-4:]
	if pix[0] != 0 || pix[2] != 255 {
		t.Fatalf("scaling wrong: %v", pix)
	}
	if pix[1] != 128 && pix[1] != 127 { // 5 of [0,10]
		t.Fatalf("midpoint = %d", pix[1])
	}
}

func TestGrayPGMConstantAndNaN(t *testing.T) {
	var buf bytes.Buffer
	if err := GrayPGM(&buf, []float64{7, 7, 7, 7}, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	for _, p := range out[len(out)-4:] {
		if p != 128 {
			t.Fatalf("constant field pixel = %d, want 128", p)
		}
	}
	buf.Reset()
	if err := GrayPGM(&buf, []float64{math.NaN(), 1, 2, 3}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[len(buf.Bytes())-4] != 0 {
		t.Fatal("NaN should render black")
	}
}

func TestGrayPGMAllNonFinite(t *testing.T) {
	var buf bytes.Buffer
	if err := GrayPGM(&buf, []float64{math.NaN(), math.Inf(1)}, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGrayPGMGeometryError(t *testing.T) {
	var buf bytes.Buffer
	if err := GrayPGM(&buf, []float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("bad geometry should error")
	}
	if err := GrayPGM(&buf, nil, 0, 0); err == nil {
		t.Fatal("zero geometry should error")
	}
}

func TestImagePGM(t *testing.T) {
	im := dataset.NewImage(3, 2)
	for i := range im.Pix {
		im.Pix[i] = uint16(i * 1000)
	}
	var buf bytes.Buffer
	if err := ImagePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len("P5\n3 2\n255\n")+6 {
		t.Fatalf("output length %d", buf.Len())
	}
}

func TestBandPGM(t *testing.T) {
	sc, err := synth.NewOTISScene(synth.DefaultOTISConfig(synth.Stripe), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BandPGM(&buf, sc.Cube, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
	if err := BandPGM(&buf, sc.Cube, 99); err == nil {
		t.Fatal("out-of-range band should error")
	}
}
