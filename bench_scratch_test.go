package spaceproc_test

import (
	"fmt"
	"testing"

	"spaceproc"
)

// The tentpole benchmarks: the allocation-free preprocessing hot path
// against the classic allocating entry points, from a single series up to
// the full Figure 1 pipeline. All report allocations; BENCH_<date>.json
// (make bench) tracks them across revisions.

// BenchmarkProcessSeries compares one AlgoNGST series pass through the
// allocating entry point and through a warm scratch.
func BenchmarkProcessSeries(b *testing.B) {
	damaged, _ := benchSeries(b, 0.025)
	a, err := spaceproc.NewAlgoNGST(spaceproc.DefaultNGSTConfig())
	if err != nil {
		b.Fatal(err)
	}
	ser := damaged.Clone()
	b.Run("Alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(ser, damaged)
			a.ProcessSeries(ser)
		}
	})
	b.Run("Scratch", func(b *testing.B) {
		sc := spaceproc.NewVoteScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(ser, damaged)
			a.ProcessSeriesScratch(ser, sc, nil)
		}
	})
}

// BenchmarkProcessSeriesScalar pins AlgoNGST to the classic scalar
// kernels (ScalarOnly) on the warm-scratch path: the in-artifact
// reference point the plane-major BenchmarkProcessSeries/Scratch number
// is read against.
func BenchmarkProcessSeriesScalar(b *testing.B) {
	damaged, _ := benchSeries(b, 0.025)
	cfg := spaceproc.DefaultNGSTConfig()
	cfg.ScalarOnly = true
	a, err := spaceproc.NewAlgoNGST(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ser := damaged.Clone()
	sc := spaceproc.NewVoteScratch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(ser, damaged)
		a.ProcessSeriesScratch(ser, sc, nil)
	}
}

// BenchmarkProcessStack measures a whole-stack preprocessing pass (the
// per-tile work of a worker) through the scratch-reusing ProcessStackWith.
func BenchmarkProcessStack(b *testing.B) {
	cfg := spaceproc.DefaultSceneConfig()
	cfg.Width, cfg.Height = 32, 32
	cfg.Readouts = 16
	scene, err := spaceproc.NewScene(cfg, spaceproc.NewRNG(20))
	if err != nil {
		b.Fatal(err)
	}
	a, err := spaceproc.NewAlgoNGST(spaceproc.DefaultNGSTConfig())
	if err != nil {
		b.Fatal(err)
	}
	stack := scene.Observed.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spaceproc.ProcessStackWith(a, stack)
	}
}

// BenchmarkPipelineRun measures the full master/worker pipeline at worker
// shard counts of 1 (classic) and 0 (auto = GOMAXPROCS); the allocated
// B/op against the pre-scratch baseline is the tentpole's acceptance
// number.
func BenchmarkPipelineRun(b *testing.B) {
	cfg := spaceproc.DefaultSceneConfig()
	cfg.Width, cfg.Height = 128, 128
	cfg.Readouts = 16
	scene, err := spaceproc.NewScene(cfg, spaceproc.NewRNG(10))
	if err != nil {
		b.Fatal(err)
	}
	pre, err := spaceproc.NewAlgoNGST(spaceproc.DefaultNGSTConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 0} {
		name := fmt.Sprintf("Shards%d", shards)
		if shards == 0 {
			name = "ShardsAuto"
		}
		b.Run(name, func(b *testing.B) {
			workers := make([]spaceproc.Worker, 4)
			for i := range workers {
				w, err := spaceproc.NewLocalWorker(pre, spaceproc.DefaultCRConfig(), spaceproc.WithShards(shards))
				if err != nil {
					b.Fatal(err)
				}
				workers[i] = w
			}
			master, err := spaceproc.NewMaster(workers, spaceproc.WithTileSize(32))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := master.Run(scene.Observed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
