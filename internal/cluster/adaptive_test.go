package cluster

import (
	"context"
	"testing"

	"spaceproc/internal/crreject"
	"spaceproc/internal/dataset"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

func testModel() CostModel {
	return CostModel{
		Lambdas:  []int{0, 20, 50, 80, 100},
		UnitCost: []float64{0, 8000, 11000, 13000, 14000},
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatalf("good model invalid: %v", err)
	}
	bad := testModel()
	bad.UnitCost = bad.UnitCost[:2]
	if err := bad.Validate(); err == nil {
		t.Error("size mismatch should be invalid")
	}
	bad = testModel()
	bad.Lambdas = []int{50, 20}
	bad.UnitCost = []float64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted lambdas should be invalid")
	}
	bad = testModel()
	bad.UnitCost[1] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should be invalid")
	}
}

func TestCostModelPick(t *testing.T) {
	m := testModel()
	const series = 1024
	if got := m.Pick(0, series); got != 0 {
		t.Fatalf("zero budget picked %d", got)
	}
	if got := m.Pick(1e12, series); got != 100 {
		t.Fatalf("huge budget picked %d", got)
	}
	// Budget that fits 11000*1024 but not 13000*1024.
	if got := m.Pick(12000*series, series); got != 50 {
		t.Fatalf("mid budget picked %d", got)
	}
}

func TestAdaptiveWorkerHonorsBudget(t *testing.T) {
	st, err := synth.GaussianStack(synth.SeriesConfig{N: 16, Initial: 20000, Sigma: 100}, 8, 8, 2000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := dataset.Fragment(st, 8)
	if err != nil {
		t.Fatal(err)
	}

	richCfg := DefaultAdaptiveConfig(testModel())
	richCfg.Budget = 1e12
	rich, err := NewAdaptive(richCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rich.ProcessTile(context.Background(), cloneTile(tiles[0])); err != nil {
		t.Fatal(err)
	}
	if rich.LastLambda() != 100 {
		t.Fatalf("rich budget used Lambda %d, want 100", rich.LastLambda())
	}

	poorCfg := DefaultAdaptiveConfig(testModel())
	poorCfg.Budget = 1
	poor, err := NewAdaptive(poorCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poor.ProcessTile(context.Background(), cloneTile(tiles[0])); err != nil {
		t.Fatal(err)
	}
	if poor.LastLambda() != 0 {
		t.Fatalf("starved budget used Lambda %d, want 0", poor.LastLambda())
	}
}

func TestAdaptiveWorkerInPipeline(t *testing.T) {
	sc := testScene(t, 11)
	cfg := DefaultAdaptiveConfig(testModel())
	cfg.Budget = 1e12
	w, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster([]Worker{w}, WithTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(sc.Observed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.Width != 64 {
		t.Fatal("pipeline output malformed")
	}
}

func TestAdaptiveWorkerErrors(t *testing.T) {
	if _, err := NewAdaptive(AdaptiveConfig{Upsilon: 4, Budget: 1, Rejection: crreject.DefaultConfig()}); err == nil {
		t.Error("empty model should error")
	}
	badCfg := DefaultAdaptiveConfig(testModel())
	badCfg.Budget = -1
	if _, err := NewAdaptive(badCfg); err == nil {
		t.Error("negative budget should error")
	}
	okCfg := DefaultAdaptiveConfig(testModel())
	okCfg.Budget = 1
	w, err := NewAdaptive(okCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ProcessTile(context.Background(), dataset.Tile{}); err == nil {
		t.Error("empty tile should error")
	}
}

// TestAdaptiveConfigConstruction pins the AdaptiveConfig path that replaced
// the removed positional NewAdaptiveWorker shim: a config assembled field by
// field builds a working worker equivalent to the old positional call.
func TestAdaptiveConfigConstruction(t *testing.T) {
	w, err := NewAdaptive(AdaptiveConfig{
		Model:     testModel(),
		Upsilon:   4,
		Budget:    1,
		Rejection: crreject.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := synth.GaussianStack(synth.SeriesConfig{N: 16, Initial: 20000, Sigma: 100}, 8, 8, 2000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := dataset.Fragment(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ProcessTile(context.Background(), cloneTile(tiles[0])); err != nil {
		t.Fatal(err)
	}
	if w.LastLambda() != 0 {
		t.Fatalf("budget 1 used Lambda %d, want 0", w.LastLambda())
	}
}
