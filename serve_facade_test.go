package spaceproc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"spaceproc"
)

// TestServeFacade round-trips a baseline through the serving facade: a
// daemon over a real worker pool, dialed by the retrying client.
func TestServeFacade(t *testing.T) {
	pool, err := spaceproc.NewWorkerPool(spaceproc.WithPoolTileSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	lw, err := spaceproc.NewLocalWorker(nil, spaceproc.DefaultCRConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool.AddWorker(lw)

	reg := spaceproc.NewTelemetryRegistry()
	daemon, err := spaceproc.NewDaemon(pool,
		spaceproc.WithServeMaxInflight(4),
		spaceproc.WithServePerClientQuota(2),
		spaceproc.WithServeRetryAfterHint(10*time.Millisecond),
		spaceproc.WithServeBatching(4, time.Millisecond),
		spaceproc.WithServeTelemetry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := daemon.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	creg := spaceproc.NewTelemetryRegistry()
	client, err := spaceproc.Dial(addr,
		spaceproc.WithServeClientID("facade"),
		spaceproc.WithServeRetryPolicy(3, time.Millisecond, 10*time.Millisecond),
		spaceproc.WithServeClientDialBackoff(2, time.Millisecond),
		spaceproc.WithServeTelemetry(creg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	stack := spaceproc.NewStack(4, 32, 32)
	for _, f := range stack.Frames {
		for i := range f.Pix {
			f.Pix[i] = uint16(1000 + i%7)
		}
	}
	res, err := client.Process(context.Background(), stack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image == nil || res.Image.Width != 32 || len(res.Compressed) == 0 {
		t.Fatalf("served result incomplete: %+v", res)
	}
	if res.CompressionRatio() <= 0 {
		t.Fatal("compression ratio must be positive")
	}
	if got := reg.Snapshot().Counters["serve_requests_accepted_total"]; got != 1 {
		t.Fatalf("serve_requests_accepted_total = %d", got)
	}
	if got := creg.Snapshot().Counters["client_requests_total"]; got != 1 {
		t.Fatalf("client_requests_total = %d", got)
	}
	if !errors.Is(spaceproc.ErrServeShed, spaceproc.ErrServeShed) {
		t.Fatal("ErrServeShed must be comparable with errors.Is")
	}
}
