package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"spaceproc"
)

// notifyWriter accumulates output and signals once per line written.
type notifyWriter struct {
	mu    sync.Mutex
	sb    strings.Builder
	lines chan string
}

func newNotifyWriter() *notifyWriter {
	return &notifyWriter{lines: make(chan string, 64)}
}

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.sb.Write(p)
	w.mu.Unlock()
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		select {
		case w.lines <- line:
		default:
		}
	}
	return len(p), nil
}

func (w *notifyWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// await returns the first line containing substr, or fails the test.
func (w *notifyWriter) await(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line := <-w.lines:
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("never saw %q in output:\n%s", substr, w.String())
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "spaceprocd ") {
		t.Fatalf("version output %q", sb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("want flag error")
	}
}

// TestServeAndDrain boots the daemon on a free port, round-trips one
// baseline through it, cancels the root context (the SIGTERM path), and
// proves run exits through the drain.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newNotifyWriter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-tile", "32",
			"-drain-timeout", "10s",
		}, out)
	}()

	line := out.await(t, "serving on ")
	addr := strings.TrimSpace(strings.TrimPrefix(line, "serving on "))
	client, err := spaceproc.DialService(addr, spaceproc.WithServeClientID("daemon-test"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	stack := spaceproc.NewStack(4, 32, 32)
	for _, f := range stack.Frames {
		for i := range f.Pix {
			f.Pix[i] = uint16(500 + i%11)
		}
	}
	res, err := client.Process(context.Background(), stack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image == nil || len(res.Compressed) == 0 {
		t.Fatalf("incomplete result: %+v", res)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never drained:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
}

// TestMetricsSidecar proves -metrics boots the observability surface.
func TestMetricsSidecar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newNotifyWriter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-metrics", "127.0.0.1:0",
			"-workers", "1",
		}, out)
	}()
	out.await(t, "metrics on http://")
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
