// Package dataset defines the data containers shared by the whole
// reproduction: temporal pixel series and image stacks for the NGST
// benchmark (16-bit integer pixels, N readouts per baseline) and radiance
// cubes for the OTIS benchmark (32-bit float samples over x, y and
// wavelength).
//
// It also implements the fragmentation step of the paper's Figure 1
// architecture: a 1024x1024 detector frame is split into 128x128 tiles that
// the master hands to worker nodes, then reassembled.
package dataset

import (
	"errors"
	"fmt"
)

// Detector geometry constants from the paper (Section 2.1).
const (
	// DetectorSize is the NGST sensor array edge length in pixels.
	DetectorSize = 1024
	// TileSize is the edge length of the image segments handed to workers.
	TileSize = 128
	// BaselineReadouts is the number N of readouts per 1000-second
	// baseline (the paper uses 64 or 65; the evaluation uses 64).
	BaselineReadouts = 64
)

// Series is the temporal sequence of 16-bit readings of a single detector
// coordinate within one baseline: the paper's {P(i), i = 1..N}.
type Series []uint16

// Clone returns an independent copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Image is a 2-D frame of 16-bit pixels in row-major order.
type Image struct {
	Width  int
	Height int
	Pix    []uint16
}

// NewImage returns a zeroed Image of the given dimensions.
func NewImage(width, height int) *Image {
	return &Image{Width: width, Height: height, Pix: make([]uint16, width*height)}
}

// At returns the pixel at (x, y). It panics if the coordinate is out of
// bounds, mirroring slice indexing.
func (im *Image) At(x, y int) uint16 { return im.Pix[y*im.Width+x] }

// Set stores v at (x, y).
func (im *Image) Set(x, y int, v uint16) { im.Pix[y*im.Width+x] = v }

// Clone returns an independent copy of im.
func (im *Image) Clone() *Image {
	out := NewImage(im.Width, im.Height)
	copy(out.Pix, im.Pix)
	return out
}

// Stack is one NGST baseline: N readout frames of identical dimensions.
// Frame i holds readout i for every coordinate, so the temporal series of a
// coordinate is the sequence of that coordinate across frames.
type Stack struct {
	Frames []*Image
}

// NewStack returns a Stack of n zeroed frames of the given dimensions.
func NewStack(n, width, height int) *Stack {
	s := &Stack{Frames: make([]*Image, n)}
	for i := range s.Frames {
		s.Frames[i] = NewImage(width, height)
	}
	return s
}

// Len returns the number of readouts in the stack.
func (s *Stack) Len() int { return len(s.Frames) }

// Width returns the frame width, or 0 for an empty stack.
func (s *Stack) Width() int {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[0].Width
}

// Height returns the frame height, or 0 for an empty stack.
func (s *Stack) Height() int {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[0].Height
}

// SeriesAt extracts the temporal series of coordinate (x, y) across all
// readouts. It is the allocating convenience: each call returns a fresh
// Series the caller owns outright. Hot loops that walk many coordinates
// should use SeriesAtBuf and reuse one buffer instead.
func (s *Stack) SeriesAt(x, y int) Series {
	return s.SeriesAtBuf(x, y, nil)
}

// SeriesAtBuf is SeriesAt without the per-call allocation: it extracts the
// series into buf, growing it only when its capacity is insufficient, and
// returns the (possibly reallocated) slice. Passing the returned slice
// back in on the next call amortizes the allocation to one per stack
// depth change. A nil buf behaves like SeriesAt.
func (s *Stack) SeriesAtBuf(x, y int, buf Series) Series {
	if cap(buf) < len(s.Frames) {
		buf = make(Series, len(s.Frames))
	}
	buf = buf[:len(s.Frames)]
	for i, f := range s.Frames {
		buf[i] = f.At(x, y)
	}
	return buf
}

// SetSeriesAt writes ser back into coordinate (x, y) of every readout.
// It panics if len(ser) != s.Len().
func (s *Stack) SetSeriesAt(x, y int, ser Series) {
	if len(ser) != len(s.Frames) {
		panic(fmt.Sprintf("dataset: series length %d != stack depth %d", len(ser), len(s.Frames)))
	}
	for i, f := range s.Frames {
		f.Set(x, y, ser[i])
	}
}

// Clone returns a deep copy of the stack.
func (s *Stack) Clone() *Stack {
	out := &Stack{Frames: make([]*Image, len(s.Frames))}
	for i, f := range s.Frames {
		out.Frames[i] = f.Clone()
	}
	return out
}

// Cube is an OTIS radiance volume: Width x Height spatial samples at Bands
// wavelengths, stored as float32 in band-major, then row-major order.
type Cube struct {
	Width  int
	Height int
	Bands  int
	Data   []float32
}

// NewCube returns a zeroed Cube of the given dimensions.
func NewCube(width, height, bands int) *Cube {
	return &Cube{
		Width:  width,
		Height: height,
		Bands:  bands,
		Data:   make([]float32, width*height*bands),
	}
}

// index returns the flat offset of (x, y, band).
func (c *Cube) index(x, y, band int) int {
	return (band*c.Height+y)*c.Width + x
}

// At returns the sample at (x, y, band).
func (c *Cube) At(x, y, band int) float32 { return c.Data[c.index(x, y, band)] }

// Set stores v at (x, y, band).
func (c *Cube) Set(x, y, band int, v float32) { c.Data[c.index(x, y, band)] = v }

// Band returns the band-th spatial plane as an independent slice of length
// Width*Height in row-major order, backed by the cube's storage (mutations
// are visible in the cube).
func (c *Cube) Band(band int) []float32 {
	off := band * c.Width * c.Height
	return c.Data[off : off+c.Width*c.Height]
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	out := NewCube(c.Width, c.Height, c.Bands)
	copy(out.Data, c.Data)
	return out
}

// Tile identifies one fragment of a frame in the Figure 1 pipeline.
type Tile struct {
	// Index is the tile's ordinal in row-major tile order.
	Index int
	// X0, Y0 are the coordinates of the tile's top-left pixel in the
	// parent frame.
	X0, Y0 int
	// Stack holds the tile's pixels for every readout.
	Stack *Stack
}

// ErrBadGeometry is returned when a frame cannot be fragmented into an
// integral number of tiles.
var ErrBadGeometry = errors.New("dataset: frame dimensions are not a multiple of the tile size")

// Fragment splits the stack into square tiles of edge tile, preserving all
// readouts, in row-major tile order. It returns ErrBadGeometry if the frame
// dimensions are not multiples of tile.
func Fragment(s *Stack, tile int) ([]Tile, error) {
	w, h := s.Width(), s.Height()
	if tile <= 0 || w%tile != 0 || h%tile != 0 {
		return nil, fmt.Errorf("%w: %dx%d into %d", ErrBadGeometry, w, h, tile)
	}
	tilesX, tilesY := w/tile, h/tile
	out := make([]Tile, 0, tilesX*tilesY)
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			t := Tile{
				Index: ty*tilesX + tx,
				X0:    tx * tile,
				Y0:    ty * tile,
				Stack: NewStack(s.Len(), tile, tile),
			}
			for i, f := range s.Frames {
				dst := t.Stack.Frames[i]
				for y := 0; y < tile; y++ {
					srcOff := (t.Y0+y)*w + t.X0
					copy(dst.Pix[y*tile:(y+1)*tile], f.Pix[srcOff:srcOff+tile])
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Reassemble reverses Fragment: it writes every tile back into a stack of
// the given frame dimensions. Tiles may arrive in any order. It returns an
// error if geometry is inconsistent or tiles are missing.
func Reassemble(tiles []Tile, n, width, height int) (*Stack, error) {
	if len(tiles) == 0 {
		return nil, errors.New("dataset: no tiles to reassemble")
	}
	tile := tiles[0].Stack.Width()
	if tile == 0 || width%tile != 0 || height%tile != 0 {
		return nil, fmt.Errorf("%w: %dx%d from %d", ErrBadGeometry, width, height, tile)
	}
	want := (width / tile) * (height / tile)
	if len(tiles) != want {
		return nil, fmt.Errorf("dataset: got %d tiles, want %d", len(tiles), want)
	}
	out := NewStack(n, width, height)
	seen := make(map[int]bool, len(tiles))
	for _, t := range tiles {
		if t.Stack.Len() != n || t.Stack.Width() != tile || t.Stack.Height() != tile {
			return nil, fmt.Errorf("dataset: tile %d has inconsistent geometry", t.Index)
		}
		if seen[t.Index] {
			return nil, fmt.Errorf("dataset: duplicate tile %d", t.Index)
		}
		seen[t.Index] = true
		for i := range out.Frames {
			src := t.Stack.Frames[i]
			for y := 0; y < tile; y++ {
				dstOff := (t.Y0+y)*width + t.X0
				copy(out.Frames[i].Pix[dstOff:dstOff+tile], src.Pix[y*tile:(y+1)*tile])
			}
		}
	}
	return out, nil
}
