package core

import (
	"math/rand"
	"testing"

	"spaceproc/internal/dataset"
)

// damagedSeries synthesizes a smooth series with rng-driven bit flips, the
// workload of the zero-allocation regression tests.
func damagedSeries(rng *rand.Rand, n int) dataset.Series {
	s := make(dataset.Series, n)
	base := 20000 + rng.Intn(20000)
	for i := range s {
		s[i] = uint16(base + rng.Intn(400) - 200)
	}
	for i := range s {
		if rng.Float64() < 0.05 {
			s[i] ^= 1 << uint(rng.Intn(16))
		}
	}
	return s
}

// TestProcessSeriesScratchZeroAlloc is the tentpole's regression gate: the
// steady-state per-series pass of every ScratchPreprocessor must not touch
// the heap once its scratch is warm.
func TestProcessSeriesScratchZeroAlloc(t *testing.T) {
	ngst, err := NewAlgoNGST(DefaultNGSTConfig())
	if err != nil {
		t.Fatal(err)
	}
	pres := []ScratchPreprocessor{ngst, Median3{}, MajorityBit3{}}
	rng := rand.New(rand.NewSource(7))
	damaged := damagedSeries(rng, 64)
	for _, pre := range pres {
		t.Run(pre.Name(), func(t *testing.T) {
			sc := NewVoteScratch()
			ser := damaged.Clone()
			var stats VoteStats
			// Warm the scratch (first pass sizes every buffer).
			pre.ProcessSeriesScratch(ser, sc, &stats)
			allocs := testing.AllocsPerRun(100, func() {
				copy(ser, damaged)
				pre.ProcessSeriesScratch(ser, sc, &stats)
			})
			if allocs != 0 {
				t.Fatalf("%s: ProcessSeriesScratch allocates %.1f objects per series with a warm scratch, want 0",
					pre.Name(), allocs)
			}
		})
	}
}

// TestProcessSeriesScratchZeroAllocUpsilonSweep guards the way buffers:
// every Upsilon reshapes the voter matrix, and each shape must still reuse
// the scratch.
func TestProcessSeriesScratchZeroAllocUpsilonSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	damaged := damagedSeries(rng, 64)
	sc := NewVoteScratch()
	for _, upsilon := range []int{2, 4, 6, 8} {
		a, err := NewAlgoNGST(NGSTConfig{Upsilon: upsilon, Sensitivity: 80})
		if err != nil {
			t.Fatal(err)
		}
		ser := damaged.Clone()
		a.ProcessSeriesScratch(ser, sc, nil)
		allocs := testing.AllocsPerRun(50, func() {
			copy(ser, damaged)
			a.ProcessSeriesScratch(ser, sc, nil)
		})
		if allocs != 0 {
			t.Fatalf("Upsilon=%d: %.1f allocs per series with a warm scratch, want 0", upsilon, allocs)
		}
	}
}

// TestScratchMatchesAllocatingPath is the differential gate: across many
// randomized fault-injected series, the scratch-based and allocating paths
// must produce bit-identical corrections and identical stats.
func TestScratchMatchesAllocatingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ngst, err := NewAlgoNGST(DefaultNGSTConfig())
	if err != nil {
		t.Fatal(err)
	}
	pres := []ScratchPreprocessor{ngst, Median3{}, MajorityBit3{}}
	sc := NewVoteScratch()
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(120)
		damaged := damagedSeries(rng, n)
		for _, pre := range pres {
			viaAlloc := damaged.Clone()
			viaScratch := damaged.Clone()
			var statsAlloc, statsScratch VoteStats
			if a, ok := pre.(*AlgoNGST); ok {
				a.ProcessSeriesStats(viaAlloc, &statsAlloc)
			} else {
				pre.ProcessSeries(viaAlloc)
			}
			pre.ProcessSeriesScratch(viaScratch, sc, &statsScratch)
			for i := range viaAlloc {
				if viaAlloc[i] != viaScratch[i] {
					t.Fatalf("trial %d %s: pixel %d diverges: allocating=%04x scratch=%04x",
						trial, pre.Name(), i, viaAlloc[i], viaScratch[i])
				}
			}
			if _, ok := pre.(*AlgoNGST); ok && statsAlloc != statsScratch {
				t.Fatalf("trial %d %s: stats diverge: allocating=%+v scratch=%+v",
					trial, pre.Name(), statsAlloc, statsScratch)
			}
		}
	}
}

// TestCubeScratchMatchesAllocatingPath runs AlgoOTIS through a shared
// scratch and a fresh pass on the same damaged cube and requires identical
// output and stats.
func TestCubeScratchMatchesAllocatingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, loc := range []OTISLocality{SpatialLocality, SpectralLocality} {
		c := dataset.NewCube(24, 24, 8)
		for i := range c.Data {
			c.Data[i] = 5 + 0.1*float32(rng.NormFloat64())
		}
		for i := range c.Data {
			if rng.Float64() < 0.01 {
				b := c.Data[i]
				c.Data[i] = b * float32(uint32(1)<<uint(rng.Intn(8)))
			}
		}
		cfg := OTISConfig{Sensitivity: 80, TrendGuard: true, Locality: loc}
		a, err := NewAlgoOTIS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		viaAlloc, viaScratch := c.Clone(), c.Clone()
		var statsAlloc, statsScratch CubeStats
		a.ProcessCubeStats(viaAlloc, &statsAlloc)
		sc := NewCubeScratch()
		a.ProcessCubeScratch(viaScratch, sc, &statsScratch)
		// And again through the now-warm scratch, to catch stale-buffer
		// carry-over between cubes.
		second := c.Clone()
		a.ProcessCubeScratch(second, sc, nil)
		for i := range viaAlloc.Data {
			if viaAlloc.Data[i] != viaScratch.Data[i] {
				t.Fatalf("%v: sample %d diverges: allocating=%v scratch=%v",
					loc, i, viaAlloc.Data[i], viaScratch.Data[i])
			}
			if viaAlloc.Data[i] != second.Data[i] {
				t.Fatalf("%v: sample %d diverges on warm reuse: %v vs %v",
					loc, i, viaAlloc.Data[i], second.Data[i])
			}
		}
		if statsAlloc != statsScratch {
			t.Fatalf("%v: stats diverge: allocating=%+v scratch=%+v", loc, statsAlloc, statsScratch)
		}
	}
}

// TestVoteStatsAddZeroMerge is the WindowCBit regression test: merging the
// zero-value stats of a tile that ran without preprocessing must not
// clobber the aggregate's window boundary, which is exactly the mixed-tile
// aggregation the cluster master performs in out.PreStats.Add.
func TestVoteStatsAddZeroMerge(t *testing.T) {
	agg := VoteStats{Series: 3, Corrected: 2, BitsWindowA: 1, BitsWindowB: 4, WindowCBit: 5}
	agg.Add(VoteStats{}) // a no-preprocessing tile
	if agg.WindowCBit != 5 {
		t.Fatalf("zero-value merge clobbered WindowCBit: got %d, want 5", agg.WindowCBit)
	}
	if agg.Series != 3 || agg.Corrected != 2 {
		t.Fatalf("zero-value merge disturbed counters: %+v", agg)
	}
	// A tile that did process series must still win the gauge.
	agg.Add(VoteStats{Series: 1, WindowCBit: 9})
	if agg.WindowCBit != 9 {
		t.Fatalf("real merge did not update WindowCBit: got %d, want 9", agg.WindowCBit)
	}
	if agg.Series != 4 {
		t.Fatalf("Series sum wrong: got %d, want 4", agg.Series)
	}
}
