package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFullFlow(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.fits")
	damaged := filepath.Join(dir, "damaged.fits")
	fixed := filepath.Join(dir, "fixed.fits")
	cleaned := filepath.Join(dir, "cleaned.fits")

	var sb strings.Builder
	steps := [][]string{
		{"gen", "-out", clean, "-width", "64", "-height", "64"},
		{"inject", "-in", clean, "-out", damaged, "-header-only", "-gamma0", "0.0002", "-seed", "5"},
		{"check", "-in", damaged, "-expect", "64x64", "-repair", "-out", fixed},
		{"clean", "-in", fixed, "-out", cleaned},
	}
	for _, step := range steps {
		if err := run(context.Background(), step, &sb); err != nil {
			t.Fatalf("%v: %v\noutput so far:\n%s", step, err, sb.String())
		}
	}
	out := sb.String()
	for _, want := range []string{"wrote", "injected", "issue(s)", "cleaned"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBodyInjectionAndClean(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.fits")
	damaged := filepath.Join(dir, "damaged.fits")
	cleaned := filepath.Join(dir, "cleaned.fits")
	var sb strings.Builder
	if err := run(context.Background(), []string{"gen", "-out", clean, "-width", "32", "-height", "32"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Whole-file injection at a rate low enough that the header usually
	// survives; the data unit dominates the bit count.
	if err := run(context.Background(), []string{"inject", "-in", clean, "-out", damaged, "-gamma0", "0.00005", "-seed", "9"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"clean", "-in", damaged, "-out", cleaned}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestSumVerifyFlow(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.fits")
	summed := filepath.Join(dir, "summed.fits")
	damaged := filepath.Join(dir, "damaged.fits")
	var sb strings.Builder
	if err := run(context.Background(), []string{"gen", "-out", clean, "-width", "16", "-height", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"sum", "-in", clean, "-out", summed}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"verify", "-in", summed}, &sb); err != nil {
		t.Fatalf("fresh DATASUM failed verify: %v", err)
	}
	// Damage the data unit; verify must fail.
	raw, err := os.ReadFile(summed)
	if err != nil {
		t.Fatal(err)
	}
	raw[3000] ^= 0x08
	if err := os.WriteFile(damaged, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"verify", "-in", damaged}, &sb); err == nil {
		t.Fatal("damaged data unit passed verify")
	}
	if !strings.Contains(sb.String(), "MISMATCH") {
		t.Fatalf("missing mismatch notice:\n%s", sb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"gen"},                      // missing -out
		{"inject", "-in", "nope"},    // missing -out
		{"check"},                    // missing -in
		{"clean", "-in", "only"},     // missing -out
		{"check", "-in", "/no/file"}, // unreadable
		{"inject", "-in", "/no/file", "-out", "x"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

func TestParseExpect(t *testing.T) {
	if axes, err := parseExpect("128x128"); err != nil || len(axes) != 2 || axes[0] != 128 {
		t.Fatalf("parseExpect: %v %v", axes, err)
	}
	if axes, err := parseExpect(""); err != nil || axes != nil {
		t.Fatalf("empty: %v %v", axes, err)
	}
	for _, bad := range []string{"axb", "12x-3", "0x4"} {
		if _, err := parseExpect(bad); err == nil {
			t.Errorf("parseExpect(%q) should error", bad)
		}
	}
}

func TestVersionSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "preflight ") {
		t.Fatalf("version output %q", sb.String())
	}
}
