package spaceproc

import (
	"spaceproc/internal/cluster"
	"spaceproc/internal/telemetry"
)

// Pipeline observability (internal/telemetry): a dependency-free metrics
// registry the cluster master, TCP workers, preprocessing algorithms, and
// the mission runner all report into — counters, gauges, latency
// histograms with quantile summaries, and a per-stage span trace. The
// registry is passive until wired in; uninstrumented pipelines pay
// nothing.
type (
	// TelemetryRegistry collects counters, gauges, histograms and spans.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a consistent point-in-time copy of a registry.
	TelemetrySnapshot = telemetry.Snapshot
	// HistogramSummary reports count/min/mean/p50/p95/p99/max for one
	// latency histogram.
	HistogramSummary = telemetry.HistogramSummary
	// TraceSpan is one recorded stage execution.
	TraceSpan = telemetry.Span
	// TelemetryServer serves /metrics, /healthz and /debug/pprof/ for a
	// registry.
	TelemetryServer = telemetry.Server
	// WorkerServerOption configures a WorkerServer.
	WorkerServerOption = cluster.ServerOption
	// AdaptiveConfig parameterizes an AdaptiveWorker.
	AdaptiveConfig = cluster.AdaptiveConfig
)

// Pipeline stage names used in span records (see TelemetrySnapshot.SpanCounts).
const (
	StageFragment = cluster.StageFragment
	StageDispatch = cluster.StageDispatch
	StageProcess  = cluster.StageProcess
	StageRetry    = cluster.StageRetry
	StageBlit     = cluster.StageBlit
	StageCompress = cluster.StageCompress
	StageRun      = cluster.StageRun
)

// NewTelemetryRegistry returns an empty registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// WithTelemetry instruments a Master: per-tile dispatch/process/retry/blit
// spans, per-worker latency histograms, and pipeline_* counters land in
// reg.
func WithTelemetry(reg *TelemetryRegistry) MasterOption { return cluster.WithTelemetry(reg) }

// WithWorkerServerTelemetry instruments a WorkerServer's request counters
// and serve latency.
func WithWorkerServerTelemetry(reg *TelemetryRegistry) WorkerServerOption {
	return cluster.WithServerTelemetry(reg)
}

// WithWorkerServerSidecar serves the observability HTTP surface
// (/metrics, /healthz, /debug/pprof/) on addr while the worker listener is
// up.
func WithWorkerServerSidecar(addr string) WorkerServerOption { return cluster.WithSidecar(addr) }

// NewTelemetryServer serves reg's observability surface on addr
// ("127.0.0.1:0" picks a free port; see TelemetryServer.Addr).
func NewTelemetryServer(reg *TelemetryRegistry, addr string) (*TelemetryServer, error) {
	return telemetry.NewServer(reg, addr)
}

// DefaultAdaptiveConfig returns an adaptive-worker config over the model
// with the paper's Upsilon = 4 and default rejection parameters.
func DefaultAdaptiveConfig(model CostModel) AdaptiveConfig {
	return cluster.DefaultAdaptiveConfig(model)
}

// NewAdaptive validates cfg and builds a budgeted worker.
func NewAdaptive(cfg AdaptiveConfig) (*AdaptiveWorker, error) { return cluster.NewAdaptive(cfg) }
