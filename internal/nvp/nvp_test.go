package nvp

import (
	"errors"
	"testing"

	"spaceproc/internal/core"
	"spaceproc/internal/dataset"
	"spaceproc/internal/fault"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

// mean is the "specification" the test versions implement.
func mean(s []float64) ([]float64, error) {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return []float64{sum / float64(len(s))}, nil
}

func threeVersions() []func([]float64) ([]float64, error) {
	// Three independently written means: accumulate, two-pass
	// (Kahan-ish), and sort-free pairwise.
	v2 := func(s []float64) ([]float64, error) {
		var sum, c float64
		for _, v := range s {
			y := v - c
			t := sum + y
			c = (t - sum) - y
			sum = t
		}
		return []float64{sum / float64(len(s))}, nil
	}
	v3 := func(s []float64) ([]float64, error) {
		m := 0.0
		for i, v := range s {
			m += (v - m) / float64(i+1)
		}
		return []float64{m}, nil
	}
	return []func([]float64) ([]float64, error){mean, v2, v3}
}

func newExec(t *testing.T, versions []func([]float64) ([]float64, error), threshold int) *Executor[[]float64, []float64] {
	t.Helper()
	e, err := New(Config[[]float64, []float64]{
		Versions: versions,
		Agree:    FloatSliceComparator(1e-9, 1e-12),
		T:        threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	good := Config[int, int]{
		Versions: []func(int) (int, error){func(v int) (int, error) { return v, nil }, func(v int) (int, error) { return v, nil }},
		Agree:    func(a, b int) bool { return a == b },
		T:        1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	bad := good
	bad.Versions = bad.Versions[:1]
	if err := bad.Validate(); err == nil {
		t.Error("single version should be invalid")
	}
	bad = good
	bad.Agree = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil comparator should be invalid")
	}
	bad = good
	bad.T = 2
	if err := bad.Validate(); err == nil {
		t.Error("T > n-1 should be invalid")
	}
	bad = good
	bad.Versions = []func(int) (int, error){good.Versions[0], nil}
	if err := bad.Validate(); err == nil {
		t.Error("nil version should be invalid")
	}
}

func TestHealthyVersionsAgree(t *testing.T) {
	e := newExec(t, threeVersions(), 2)
	out, rep, err := e.Run([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2.5 {
		t.Fatalf("mean = %v", out[0])
	}
	if rep.Winner < 0 || len(rep.Crashed) != 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestBuggyVersionOutvoted(t *testing.T) {
	vs := threeVersions()
	vs[1] = func(s []float64) ([]float64, error) { return []float64{-999}, nil } // design bug
	e := newExec(t, vs, 1)
	out, rep, err := e.Run([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2.5 {
		t.Fatalf("voter released the buggy output: %v", out)
	}
	if rep.Winner == 1 {
		t.Fatal("buggy version won")
	}
}

func TestCrashedVersionTolerated(t *testing.T) {
	vs := threeVersions()
	vs[0] = func([]float64) ([]float64, error) { return nil, errors.New("node lost") }
	e := newExec(t, vs, 1)
	out, rep, err := e.Run([]float64{2, 4})
	if err != nil || out[0] != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != 0 {
		t.Fatalf("crash not reported: %+v", rep)
	}
}

func TestPanicContained(t *testing.T) {
	vs := threeVersions()
	vs[2] = func([]float64) ([]float64, error) { panic("boom") }
	e := newExec(t, vs, 1)
	if _, _, err := e.Run([]float64{1, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestNoConsensus(t *testing.T) {
	vs := []func([]float64) ([]float64, error){
		func([]float64) ([]float64, error) { return []float64{1}, nil },
		func([]float64) ([]float64, error) { return []float64{2}, nil },
		func([]float64) ([]float64, error) { return []float64{3}, nil },
	}
	e := newExec(t, vs, 1)
	if _, _, err := e.Run(nil); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("err = %v, want ErrNoConsensus", err)
	}
}

func TestUnanimityThreshold(t *testing.T) {
	vs := threeVersions()
	vs[1] = func(s []float64) ([]float64, error) { return []float64{-1}, nil }
	e := newExec(t, vs, 2) // unanimity among the others required
	if _, _, err := e.Run([]float64{5, 5}); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("err = %v, want ErrNoConsensus at T=2 with one dissenter", err)
	}
}

func TestFloatSliceComparator(t *testing.T) {
	cmp := FloatSliceComparator(0.01, 1e-9)
	if !cmp([]float64{100}, []float64{100.5}) {
		t.Error("within relative tolerance should agree")
	}
	if cmp([]float64{100}, []float64{102}) {
		t.Error("outside tolerance should disagree")
	}
	if cmp([]float64{1}, []float64{1, 2}) {
		t.Error("length mismatch should disagree")
	}
	if !cmp([]float64{0}, []float64{0}) {
		t.Error("zeros should agree via absolute floor")
	}
	if !cmp([]float64{-100}, []float64{-100.5}) {
		t.Error("negative magnitudes should use |a|")
	}
}

// TestCorruptedInputDefeatsNVP is the paper's introduction in code: all
// versions process the same corrupted series and agree on the same wrong
// answer; the voter releases it with full confidence. Input preprocessing
// repairs what NVP cannot see.
func TestCorruptedInputDefeatsNVP(t *testing.T) {
	ideal, err := synth.GaussianSeries(synth.SeriesConfig{N: 64, Initial: 27000, Sigma: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	damaged := ideal.Clone()
	fault.Uncorrelated{Gamma0: 0.05}.InjectSeries(damaged, rng.New(2))

	// The science product is the peak reading (photometry of a point
	// source): a single high-bit flip anywhere corrupts it, and the
	// damage does not average away as it would for a mean.
	peakOf := func(s dataset.Series) float64 {
		var peak float64
		for _, v := range s {
			if f := float64(v); f > peak {
				peak = f
			}
		}
		return peak
	}
	truth := peakOf(ideal)

	versions := []func(dataset.Series) ([]float64, error){
		func(s dataset.Series) ([]float64, error) { return []float64{peakOf(s)}, nil },
		func(s dataset.Series) ([]float64, error) { return []float64{peakOf(s)}, nil },
		func(s dataset.Series) ([]float64, error) { return []float64{peakOf(s)}, nil },
	}
	e, err := New(Config[dataset.Series, []float64]{
		Versions: versions,
		Agree:    FloatSliceComparator(1e-6, 1e-9),
		T:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e.Run(damaged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Winner < 0 {
		t.Fatal("voter should reach (false) consensus")
	}
	wrong := abs(out[0]-truth) / truth
	if wrong < 0.005 {
		t.Fatalf("input damage too small to demonstrate the failure (%.4f)", wrong)
	}

	// Preprocess the input first: the same NVP released output is now
	// close to the truth.
	pre, err := core.NewAlgoNGST(core.DefaultNGSTConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned := ideal.Clone()
	fault.Uncorrelated{Gamma0: 0.05}.InjectSeries(cleaned, rng.New(2))
	pre.ProcessSeries(cleaned)
	out2, _, err := e.Run(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	fixed := abs(out2[0]-truth) / truth
	if fixed*5 > wrong {
		t.Fatalf("preprocessing gained too little: wrong %.5f, preprocessed %.5f", wrong, fixed)
	}
}
