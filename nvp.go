package spaceproc

import (
	"spaceproc/internal/nvp"
)

// N-Version Programming (internal/nvp): the classic software-redundancy
// scheme the paper's introduction contrasts input preprocessing against,
// with t/(n-1)-VP adjudication. Exposed specialized to series-consuming
// computations with numeric vector outputs (the shape of the repo's
// science products).
type (
	// SeriesNVP runs n versions of a series-consuming computation and
	// votes on their outputs.
	SeriesNVP = nvp.Executor[Series, []float64]
	// SeriesNVPConfig parameterizes SeriesNVP.
	SeriesNVPConfig = nvp.Config[Series, []float64]
	// NVPReport describes one adjudication.
	NVPReport = nvp.Report
)

// ErrNoConsensus is returned when no version reaches the agreement
// threshold.
var ErrNoConsensus = nvp.ErrNoConsensus

// NewSeriesNVP validates cfg and returns the executor.
func NewSeriesNVP(cfg SeriesNVPConfig) (*SeriesNVP, error) { return nvp.New(cfg) }

// FloatSliceComparator returns a tolerance comparator for numeric vector
// outputs.
func FloatSliceComparator(relTol, absTol float64) func(a, b []float64) bool {
	return nvp.FloatSliceComparator(relTol, absTol)
}
