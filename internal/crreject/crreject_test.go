package crreject

import (
	"math"
	"testing"

	"spaceproc/internal/dataset"
	"spaceproc/internal/metrics"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Threshold: 0, SigmaFloor: 1}).Validate(); err == nil {
		t.Error("zero threshold should be invalid")
	}
	if err := (Config{Threshold: 5, SigmaFloor: -1}).Validate(); err == nil {
		t.Error("negative floor should be invalid")
	}
}

func TestIntegrateCleanStack(t *testing.T) {
	// Without CRs, integration is just the temporal mean.
	st := dataset.NewStack(8, 4, 4)
	for i, f := range st.Frames {
		for j := range f.Pix {
			f.Pix[j] = uint16(1000 + i) // mean 1003.5 -> 1004
		}
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img, stats := r.Integrate(st)
	if stats.Hits != 0 || stats.Steps != 0 {
		t.Fatalf("clean stack produced rejections: %+v", stats)
	}
	for _, p := range img.Pix {
		if p != 1004 {
			t.Fatalf("integrated value %d, want 1004", p)
		}
	}
}

func TestIntegrateRemovesStep(t *testing.T) {
	// One pixel is struck at readout 5: +8000 counts persist.
	st := dataset.NewStack(16, 3, 3)
	for _, f := range st.Frames {
		for j := range f.Pix {
			f.Pix[j] = 12000
		}
	}
	for i := 5; i < 16; i++ {
		st.Frames[i].Set(1, 1, 20000)
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img, stats := r.Integrate(st)
	if stats.Hits != 1 || stats.Steps != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 step", stats)
	}
	if got := img.At(1, 1); got != 12000 {
		t.Fatalf("struck pixel integrated to %d, want 12000", got)
	}
	if got := img.At(0, 0); got != 12000 {
		t.Fatalf("clean pixel integrated to %d, want 12000", got)
	}
}

func TestIntegrateMultipleSteps(t *testing.T) {
	st := dataset.NewStack(32, 1, 1)
	level := 10000
	for i, f := range st.Frames {
		if i == 8 {
			level += 5000
		}
		if i == 20 {
			level += 7000
		}
		f.Pix[0] = uint16(level)
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img, stats := r.Integrate(st)
	if stats.Steps != 2 {
		t.Fatalf("steps = %d, want 2", stats.Steps)
	}
	if got := img.Pix[0]; got != 10000 {
		t.Fatalf("integrated %d, want 10000", got)
	}
}

func TestIntegrateSceneRecoversIdeal(t *testing.T) {
	// Full synthetic scene: integration of the CR-contaminated stack must
	// land close to the integration of the ideal stack.
	cfg := synth.DefaultSceneConfig()
	cfg.Width, cfg.Height = 32, 32
	sc, err := synth.NewScene(cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotImg, stats := r.Integrate(sc.Observed)
	wantImg, _ := r.Integrate(sc.Ideal)
	if stats.Hits == 0 {
		t.Fatal("no CR hits detected on a 10%-rate scene")
	}
	psi := metrics.RelativeError16(gotImg.Pix, wantImg.Pix)
	if psi > 0.01 {
		t.Fatalf("CR-rejected integration differs from ideal by %.4f", psi)
	}
	// Without rejection, the naive mean must be visibly worse.
	naive := naiveMean(sc.Observed)
	psiNaive := metrics.RelativeError16(naive.Pix, wantImg.Pix)
	if psiNaive < 5*psi {
		t.Fatalf("rejection gained too little: with %.5f, naive %.5f", psi, psiNaive)
	}
}

func naiveMean(s *dataset.Stack) *dataset.Image {
	w, h := s.Width(), s.Height()
	out := dataset.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float64
			for _, f := range s.Frames {
				sum += float64(f.At(x, y))
			}
			out.Set(x, y, uint16(sum/float64(s.Len())+0.5))
		}
	}
	return out
}

func TestIntegrateDetectionStats(t *testing.T) {
	// Detection recall on known hits should be high; false detections on
	// clean pixels low.
	cfg := synth.DefaultSceneConfig()
	cfg.Width, cfg.Height = 48, 48
	cfg.TemporalSigma = 40
	sc, err := synth.NewScene(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, stats := r.Integrate(sc.Observed)
	want := len(sc.CRHits)
	if stats.Hits < want*8/10 {
		t.Fatalf("recall too low: detected %d of %d struck pixels", stats.Hits, want)
	}
	if stats.Hits > want*13/10 {
		t.Fatalf("too many detections: %d vs %d true hits", stats.Hits, want)
	}
}

func TestIntegrateEmptyAndTiny(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img, stats := r.Integrate(dataset.NewStack(1, 2, 2))
	if stats.Hits != 0 || img.Width != 2 {
		t.Fatal("single-readout stack mishandled")
	}
}

func TestMadSigma(t *testing.T) {
	if got := madSigma(nil, nil); got != 0 {
		t.Fatalf("empty madSigma = %v", got)
	}
	// Standard normal-ish spread: MAD of {-1,0,1} = 1 -> sigma ~1.48.
	if got := madSigma([]float64{-1, 0, 1}, nil); math.Abs(got-1.4826) > 1e-9 {
		t.Fatalf("madSigma = %v", got)
	}
	// Robust to one huge outlier.
	if got := madSigma([]float64{-1, 0, 1, 0, -1, 1e9}, nil); got > 3 {
		t.Fatalf("madSigma not robust: %v", got)
	}
}
