package spaceproc

import (
	"spaceproc/internal/adapt"
	"spaceproc/internal/core"
	"spaceproc/internal/downlink"
)

// Downlink scheduling (internal/downlink): bandwidth-limited ground-
// station passes over the compressed science products.
type (
	// DownlinkProduct is one compressed product awaiting downlink.
	DownlinkProduct = downlink.Product
	// DownlinkScheduler holds the downlink queue.
	DownlinkScheduler = downlink.Scheduler
	// DownlinkPass is the outcome of one ground-station pass.
	DownlinkPass = downlink.Pass
)

// NewDownlinkScheduler returns an empty queue.
func NewDownlinkScheduler() *DownlinkScheduler { return downlink.NewScheduler() }

// Closed-loop sensitivity control (internal/adapt): estimate the operating
// fault rate from preprocessing telemetry and feed it back into the
// calibration table.

// SensitivityLoop tracks telemetry across baselines and picks the next
// sensitivity.
type SensitivityLoop = adapt.ClosedLoop

// EstimateFaultRate infers the per-bit flip probability from voter
// telemetry over series of the given length.
func EstimateFaultRate(stats VoteStats, seriesLen int) float64 {
	return adapt.EstimateRate(core.VoteStats(stats), seriesLen)
}

// NewSensitivityLoop starts a closed-loop controller at the calibrated
// sensitivity for the expected initial rate.
func NewSensitivityLoop(cal *Calibration, initialRate float64) *SensitivityLoop {
	return adapt.NewClosedLoop(cal, initialRate)
}
