package rice

import (
	"testing"
)

// FuzzDecode asserts that no byte stream can panic the decoder: it either
// returns samples or an error.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 4, 0xFF, 0xFF, 0xFF})
	f.Add(Encode([]uint16{1, 2, 3, 60000, 0, 32768}))
	f.Add(Encode(make([]uint16, 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip through Encode/Decode.
		back, err := Decode(Encode(out))
		if err != nil {
			t.Fatalf("re-encode of decoded data failed: %v", err)
		}
		if len(back) != len(out) {
			t.Fatalf("round trip changed length: %d != %d", len(back), len(out))
		}
		for i := range out {
			if back[i] != out[i] {
				t.Fatalf("round trip changed sample %d", i)
			}
		}
	})
}

// FuzzEncodeRoundTrip asserts Encode/Decode identity over arbitrary
// sample buffers (bytes reinterpreted as uint16 pairs).
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78})
	f.Add(make([]byte, 1000))
	f.Fuzz(func(t *testing.T, raw []byte) {
		samples := make([]uint16, len(raw)/2)
		for i := range samples {
			samples[i] = uint16(raw[2*i])<<8 | uint16(raw[2*i+1])
		}
		dec, err := Decode(Encode(samples))
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if len(dec) != len(samples) {
			t.Fatalf("length %d != %d", len(dec), len(samples))
		}
		for i := range samples {
			if dec[i] != samples[i] {
				t.Fatalf("sample %d: %d != %d", i, dec[i], samples[i])
			}
		}
	})
}
