package core

import (
	"context"
	"fmt"
	"log/slog"

	"spaceproc/internal/dataset"
	"spaceproc/internal/telemetry"
)

// SeriesPreprocessor repairs suspected bit flips in a temporal pixel series
// in place.
type SeriesPreprocessor interface {
	// Name identifies the algorithm in reports and experiment tables.
	Name() string
	// ProcessSeries repairs s in place.
	ProcessSeries(s dataset.Series)
}

// NGSTConfig parameterizes AlgoNGST.
type NGSTConfig struct {
	// Upsilon is the number of neighbors each pixel consults (Upsilon/2
	// forward and Upsilon/2 backward); it must be even and >= 2. The
	// paper finds 4 best for the NGST and OTIS benchmarks.
	Upsilon int
	// Sensitivity is Lambda in [0, 100]. At 0 the pixel pass is skipped
	// entirely (only the FITS header sanity analysis runs, at the file
	// layer); higher values admit more voters, identifying more flips at
	// the cost of more false alarms and more computation.
	Sensitivity int

	// The remaining fields are ablation switches for the design-choice
	// experiments of DESIGN.md section 6; the zero values select the
	// paper-faithful algorithm.

	// DisableQuorum turns off the GRT auxiliary vote in window A
	// (unanimous voting everywhere).
	DisableQuorum bool
	// DisableCarryGuard turns off the carry-propagation acceptance test
	// (DESIGN.md #4.8).
	DisableCarryGuard bool
	// LiteralPhi uses the prune-index formula exactly as printed in the
	// paper, decreasing in Lambda (DESIGN.md #4.2).
	LiteralPhi bool
	// StaticWindows replaces the dynamic bit-window masks with fixed
	// boundaries: window C = bits < StaticLSB, window A = bits >=
	// StaticMSB.
	StaticWindows bool
	// StaticLSB and StaticMSB are the fixed boundaries used when
	// StaticWindows is set.
	StaticLSB, StaticMSB int

	// ScalarOnly pins the pass to the scalar (value-at-a-time) kernel,
	// disabling the plane-major bit-sliced path. The two are bit-identical
	// (enforced by differential fuzzing); this switch exists for layout
	// experiments, for the differential oracle itself, and as an escape
	// hatch.
	ScalarOnly bool
}

// DefaultNGSTConfig returns the paper's experimentally optimal parameters.
func DefaultNGSTConfig() NGSTConfig {
	return NGSTConfig{Upsilon: 4, Sensitivity: 80}
}

// Validate reports whether the configuration is usable.
func (c NGSTConfig) Validate() error {
	switch {
	case c.Upsilon < 2 || c.Upsilon%2 != 0:
		return fmt.Errorf("core: Upsilon must be even and >= 2, got %d", c.Upsilon)
	case c.Sensitivity < 0 || c.Sensitivity > 100:
		return fmt.Errorf("core: sensitivity %d outside [0,100]", c.Sensitivity)
	case c.StaticWindows && (c.StaticLSB < 0 || c.StaticMSB < c.StaticLSB || c.StaticMSB > 16):
		return fmt.Errorf("core: static windows [%d,%d] not ordered within a 16-bit word",
			c.StaticLSB, c.StaticMSB)
	}
	return nil
}

// AlgoNGST is the paper's Algorithm 1: dynamic bit-window voter
// preprocessing for temporally redundant 16-bit pixel series.
type AlgoNGST struct {
	cfg NGSTConfig
	tel *voteCounters
	log *slog.Logger
}

// voteCounters is the registry view of VoteStats: resolved once by
// Instrument so the per-series path pays only atomic adds.
type voteCounters struct {
	series        *telemetry.Counter
	corrected     *telemetry.Counter
	bitsWindowA   *telemetry.Counter
	bitsWindowB   *telemetry.Counter
	guardRejected *telemetry.Counter
	windowCBit    *telemetry.Gauge
}

func newVoteCounters(reg *telemetry.Registry) *voteCounters {
	return &voteCounters{
		series:        reg.Counter("preprocess_series_total"),
		corrected:     reg.Counter("preprocess_corrected_total"),
		bitsWindowA:   reg.Counter("preprocess_bits_window_a_total"),
		bitsWindowB:   reg.Counter("preprocess_bits_window_b_total"),
		guardRejected: reg.Counter("preprocess_guard_rejected_total"),
		windowCBit:    reg.Gauge("preprocess_window_c_bit"),
	}
}

func (c *voteCounters) add(s VoteStats) {
	c.series.Add(int64(s.Series))
	c.corrected.Add(int64(s.Corrected))
	c.bitsWindowA.Add(int64(s.BitsWindowA))
	c.bitsWindowB.Add(int64(s.BitsWindowB))
	c.guardRejected.Add(int64(s.GuardRejected))
	c.windowCBit.Set(float64(s.WindowCBit))
}

var _ ScratchPreprocessor = (*AlgoNGST)(nil)

// NewAlgoNGST validates cfg and returns the algorithm.
func NewAlgoNGST(cfg NGSTConfig) (*AlgoNGST, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AlgoNGST{cfg: cfg}, nil
}

// Name implements SeriesPreprocessor.
func (a *AlgoNGST) Name() string {
	return fmt.Sprintf("Algo_NGST(Y=%d,L=%d)", a.cfg.Upsilon, a.cfg.Sensitivity)
}

// Config returns the algorithm's configuration.
func (a *AlgoNGST) Config() NGSTConfig { return a.cfg }

// Instrument feeds the algorithm's correction counters
// (preprocess_*_total) into reg on every pass, alongside whatever
// VoteStats collector the caller supplies. A nil registry detaches the
// instrumentation. Call before sharing the value across workers.
func (a *AlgoNGST) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		a.tel = nil
		return
	}
	a.tel = newVoteCounters(reg)
}

// Forensics routes per-series correction events into l at WARN: one record
// per repaired series with the corrected bits broken down by window (A:
// MSBs repaired by unanimous/quorum vote, B: mid bits, C boundary). Meant
// for harnesses that hold ground truth (a fault-free reference run) and
// can therefore audit each event; it is chatty at high fault rates, so
// leave it nil in production sweeps. A nil logger detaches it. Call before
// sharing the value across workers.
func (a *AlgoNGST) Forensics(l *slog.Logger) { a.log = l }

// ProcessSeries implements SeriesPreprocessor: it identifies temporally
// non-conforming bits by Upsilon-way XOR voting with dynamic per-way
// thresholds and repairs them in place.
func (a *AlgoNGST) ProcessSeries(s dataset.Series) {
	a.ProcessSeriesStats(s, nil)
}

// ProcessSeriesStats is ProcessSeries with observability: when stats is
// non-nil, the pass accumulates correction counters into it. The caller
// owns stats, so a single AlgoNGST value stays safe for concurrent use by
// workers that each pass their own collector. It allocates a fresh
// scratch per call; hot loops should hold a VoteScratch and call
// ProcessSeriesScratch instead.
func (a *AlgoNGST) ProcessSeriesStats(s dataset.Series, stats *VoteStats) {
	a.ProcessSeriesScratch(s, nil, stats)
}

// ProcessSeriesScratch implements ScratchPreprocessor: the voter pass
// against caller-owned scratch. With a warm scratch the steady-state pass
// performs zero heap allocations (enforced by TestProcessSeriesScratchZeroAlloc);
// the forensics logger is the one exception, allocating its WARN record
// for each repaired series. sc may be nil (a fresh scratch is used);
// stats, when non-nil, accumulates the pass's counters.
func (a *AlgoNGST) ProcessSeriesScratch(s dataset.Series, sc *VoteScratch, stats *VoteStats) {
	if a.cfg.Sensitivity == 0 {
		return
	}
	if sc == nil {
		sc = new(VoteScratch)
	}
	sc.vals = growU32(sc.vals, len(s))
	vals := sc.vals
	for i, v := range s {
		vals[i] = uint32(v)
	}
	// When instrumented, collect into the scratch's staging VoteStats and
	// fan out to both the caller's collector and the registry counters;
	// otherwise the caller's pointer is used directly (zero extra cost).
	collect := stats
	if a.tel != nil || a.log != nil {
		sc.stats = VoteStats{}
		collect = &sc.stats
	}
	opt := a.cfg.voteOptions(collect)
	corr := correctTemporalAuto(sc, vals, a.cfg.Upsilon, a.cfg.Sensitivity, 16, opt, a.cfg.ScalarOnly)
	for i := range s {
		s[i] ^= uint16(corr[i])
	}
	if collect == &sc.stats {
		a.finishSeries(sc.stats, stats)
	}
}

// logSeriesCorrected emits the forensics WARN record for one repaired
// series.
func (a *AlgoNGST) logSeriesCorrected(local VoteStats) {
	a.log.LogAttrs(context.Background(), slog.LevelWarn, "series corrected",
		slog.String("stage", "preprocess"),
		slog.String("algo", a.Name()),
		slog.Int("corrected_pixels", local.Corrected),
		slog.Int("window_a_bits", local.BitsWindowA),
		slog.Int("window_b_bits", local.BitsWindowB),
		slog.Int("window_c_bit", local.WindowCBit),
		slog.Int("guard_rejected", local.GuardRejected))
}

// ProcessStack applies the algorithm to the temporal series of every
// coordinate of a baseline stack in place.
func (a *AlgoNGST) ProcessStack(s *dataset.Stack) {
	ProcessStackWith(a, s)
}

// ProcessStackWith runs any series preprocessor over every coordinate of a
// stack in place. When p implements PlanePreprocessor and the stack
// geometry permits, the whole stack runs through the plane-major path;
// when p implements ScratchPreprocessor, the stack is processed through
// one reused scratch and series buffer, so the pass allocates O(1)
// instead of O(width*height).
func ProcessStackWith(p SeriesPreprocessor, s *dataset.Stack) {
	w, h := s.Width(), s.Height()
	if pp, ok := p.(PlanePreprocessor); ok && pp.PlaneCapable(s.Len()) {
		pp.ProcessStackPlanes(s, 0, w*h, new(VoteScratch), nil)
		return
	}
	sp, _ := p.(ScratchPreprocessor)
	var sc *VoteScratch
	if sp != nil {
		sc = new(VoteScratch)
	}
	var ser dataset.Series
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ser = s.SeriesAtBuf(x, y, ser)
			if sp != nil {
				sp.ProcessSeriesScratch(ser, sc, nil)
			} else {
				p.ProcessSeries(ser)
			}
			s.SetSeriesAt(x, y, ser)
		}
	}
}
