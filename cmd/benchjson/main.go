// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document holding a machine-context meta block (go
// version, OS/arch, CPU model, GOMAXPROCS) and one benchmark record per
// result line with the name, iteration count, ns/op, and — when -benchmem
// was on — B/op and allocs/op. `make bench` pipes through it to produce
// the dated BENCH_<date>.json artifacts tracked alongside EXPERIMENTS.md.
//
// With -compare, benchjson stops reading stdin and instead diffs two
// recorded artifacts:
//
//	benchjson -compare [-threshold PCT] old.json new.json
//
// printing the per-benchmark ns/op speedup (or slowdown) for every name
// present in both files — GOMAXPROCS name suffixes are normalized away so
// artifacts from different machines line up — and exiting non-zero when
// any benchmark regressed by more than the threshold (default 10%). Both
// the current {meta, benchmarks} document and the legacy bare-array
// format load transparently.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"strings"

	"spaceproc/internal/cmdutil"
	"spaceproc/internal/telemetry"
)

// record is one parsed benchmark result line.
type record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// meta records the machine context a benchmark artifact was captured on,
// so numbers are comparable (or visibly not) across sessions. goos, goarch
// and cpu are parsed from the benchmark text header when present and fall
// back to the converting process's runtime, which is the same machine for
// the `make bench` pipeline.
type meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// document is the JSON artifact: machine context plus the records.
type document struct {
	Meta       meta     `json:"meta"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		telemetry.NewLogger(os.Stderr, slog.LevelInfo).
			Error("run failed", "cmd", "benchjson", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the JSON document to this file instead of stdout")
	echo := fs.Bool("echo", true, "echo the raw benchmark text to stdout while parsing")
	compareMode := fs.Bool("compare", false, "compare two recorded artifacts (old.json new.json) instead of converting stdin")
	threshold := fs.Float64("threshold", 10, "with -compare, fail when any benchmark slows down by more than this percentage")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		cmdutil.PrintVersion(stdout, "benchjson")
		return nil
	}
	if *compareMode {
		if fs.NArg() != 2 {
			return fmt.Errorf("benchjson: -compare wants exactly two artifacts (old.json new.json), got %d args", fs.NArg())
		}
		return compare(fs.Arg(0), fs.Arg(1), *threshold, stdout)
	}

	doc := document{Meta: meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := sc.Text()
		if *echo {
			fmt.Fprintln(stdout, line)
		}
		if r, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
			continue
		}
		// goos/goarch/cpu headers repeat per package; any occurrence wins
		// (they describe the one machine the run happened on).
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			doc.Meta.GOOS = strings.TrimSpace(v)
		} else if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			doc.Meta.GOARCH = strings.TrimSpace(v)
		} else if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.Meta.CPU = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if doc.Benchmarks == nil {
		doc.Benchmarks = []record{}
	}
	return enc.Encode(doc)
}

// parseLine recognizes benchmark result lines such as
//
//	BenchmarkVote/lambda=80-8   1201   987654 ns/op   120 B/op   3 allocs/op
//
// and ignores everything else (PASS, ok, goos headers, test logs).
func parseLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: fields[0], Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				ok = true
			}
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, ok
}

// loadArtifact reads a recorded benchmark artifact, accepting both the
// current {meta, benchmarks} document and the legacy bare-array format
// (pre-meta BENCH_*.json files start with '[').
func loadArtifact(path string) (document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var recs []record
		if err := json.Unmarshal(trimmed, &recs); err != nil {
			return document{}, fmt.Errorf("benchjson: %s: %w", path, err)
		}
		return document{Benchmarks: recs}, nil
	}
	var doc document
	if err := json.Unmarshal(trimmed, &doc); err != nil {
		return document{}, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return doc, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix `go test` appends
// to benchmark names, so artifacts captured at different parallelism still
// pair up by name.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare diffs the ns/op of every benchmark present in both artifacts and
// returns an error listing the benchmarks that slowed down by more than
// threshold percent.
func compare(oldPath, newPath string, threshold float64, w io.Writer) error {
	oldDoc, err := loadArtifact(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadArtifact(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]record, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[normalizeName(r.Name)] = r
	}
	var regressions []string
	matched := 0
	for _, r := range newDoc.Benchmarks {
		name := normalizeName(r.Name)
		o, ok := oldBy[name]
		if !ok || o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		matched++
		if r.NsPerOp <= o.NsPerOp {
			fmt.Fprintf(w, "%-64s %14.1f -> %14.1f ns/op  (%.2fx faster)\n",
				name, o.NsPerOp, r.NsPerOp, o.NsPerOp/r.NsPerOp)
			continue
		}
		pct := (r.NsPerOp/o.NsPerOp - 1) * 100
		tag := ""
		if pct > threshold {
			tag = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/op (+%.1f%%)", name, o.NsPerOp, r.NsPerOp, pct))
		}
		fmt.Fprintf(w, "%-64s %14.1f -> %14.1f ns/op  (+%.1f%% slower)%s\n",
			name, o.NsPerOp, r.NsPerOp, pct, tag)
	}
	if matched == 0 {
		return fmt.Errorf("benchjson: no benchmark names in common between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%%:\n", len(regressions), threshold)
		for _, s := range regressions {
			fmt.Fprintf(w, "  %s\n", s)
		}
		return fmt.Errorf("benchjson: %d benchmark(s) regressed more than %.0f%%", len(regressions), threshold)
	}
	fmt.Fprintf(w, "\n%d benchmark(s) compared, none regressed more than %.0f%%\n", matched, threshold)
	return nil
}
