package rice

import (
	"errors"
	"testing"
	"testing/quick"

	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

func roundTrip(t *testing.T, samples []uint16) []byte {
	t.Helper()
	enc := Encode(samples)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(samples) {
		t.Fatalf("length %d != %d", len(dec), len(samples))
	}
	for i := range samples {
		if dec[i] != samples[i] {
			t.Fatalf("sample %d: %d != %d", i, dec[i], samples[i])
		}
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	tests := [][]uint16{
		{},
		{0},
		{65535},
		{1, 2, 3, 4, 5},
		{27000, 27001, 26999, 27002, 27000},
		make([]uint16, 1000), // all zeros
	}
	for _, s := range tests {
		roundTrip(t, s)
	}
}

func TestRoundTripRandom(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := src.Intn(500) + 1
		s := make([]uint16, n)
		for i := range s {
			s[i] = uint16(src.Uint32())
		}
		roundTrip(t, s)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s []uint16) bool {
		enc := Encode(s)
		dec, err := Decode(enc)
		if err != nil || len(dec) != len(s) {
			return false
		}
		for i := range s {
			if dec[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	// NGST-like smooth temporal data must compress well.
	ser, err := synth.GaussianSeries(synth.SeriesConfig{N: 4096, Initial: 27000, Sigma: 30}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	enc := roundTrip(t, ser)
	ratio := float64(2*len(ser)) / float64(len(enc))
	if ratio < 2 {
		t.Fatalf("smooth data ratio = %.2f, want >= 2", ratio)
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	// Incompressible data must stay near 1:1 thanks to the verbatim
	// escape (overhead bounded by the per-block k field).
	src := rng.New(3)
	s := make([]uint16, 4096)
	for i := range s {
		s[i] = uint16(src.Uint32())
	}
	enc := roundTrip(t, s)
	overhead := float64(len(enc))/float64(2*len(s)) - 1
	if overhead > 0.05 {
		t.Fatalf("incompressible overhead = %.1f%%, want <= 5%%", overhead*100)
	}
}

func TestBitFlipsDegradeCompression(t *testing.T) {
	// The paper's Section 2 motivation: damage (CR hits / bit flips)
	// reduces the compression ratio.
	ser, err := synth.GaussianSeries(synth.SeriesConfig{N: 8192, Initial: 27000, Sigma: 30}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	clean := Ratio(ser)
	damaged := append([]uint16(nil), ser...)
	src := rng.New(5)
	for i := range damaged {
		if src.Bernoulli(0.05) {
			damaged[i] ^= 1 << uint(src.Intn(16))
		}
	}
	dirty := Ratio(damaged)
	if dirty >= clean {
		t.Fatalf("damage did not degrade compression: clean %.2f, damaged %.2f", clean, dirty)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil input: %v", err)
	}
	if _, err := Decode([]byte{0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	// Header claims samples but no body follows.
	if _, err := Decode([]byte{0, 0, 0, 10}); !errors.Is(err, ErrTruncated) {
		t.Errorf("missing body: %v", err)
	}
	// Illegal k (between maxK and escape).
	bad := []byte{0, 0, 0, 1, 20 << 3} // k=20 in the top 5 bits
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad k: %v", err)
	}
	// Truncating a valid stream mid-body must error, not panic.
	s := []uint16{100, 200, 300, 400, 500, 600, 700, 800}
	enc := Encode(s)
	for cut := 4; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d silently succeeded", cut)
		}
	}
}

func TestZigzag(t *testing.T) {
	tests := []struct {
		v int32
		u uint32
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {-32768, 65535}, {32767, 65534}}
	for _, tt := range tests {
		if got := zigzag(tt.v); got != tt.u {
			t.Errorf("zigzag(%d) = %d, want %d", tt.v, got, tt.u)
		}
		if got := unzigzag(tt.u); got != tt.v {
			t.Errorf("unzigzag(%d) = %d, want %d", tt.u, got, tt.v)
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int32) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w bitWriter
	w.writeBits(0b101, 3)
	w.writeBits(0xFFFF, 16)
	w.writeBits(0, 1)
	w.writeBits(0xDEADBEEF, 32)
	w.flush()
	r := bitReader{bytes: w.bytes}
	if v, _ := r.readBits(3); v != 0b101 {
		t.Fatalf("3-bit read = %b", v)
	}
	if v, _ := r.readBits(16); v != 0xFFFF {
		t.Fatalf("16-bit read = %x", v)
	}
	if v, _ := r.readBits(1); v != 0 {
		t.Fatalf("1-bit read = %d", v)
	}
	if v, _ := r.readBits(32); v != 0xDEADBEEF {
		t.Fatalf("32-bit read = %x", v)
	}
	if _, err := r.readBits(32); err == nil {
		t.Fatal("reading past end should error")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(make([]uint16, 640)); r < 10 {
		t.Fatalf("all-zero ratio = %.2f, want large", r)
	}
}

func TestLargeValuesWithHugeDeltas(t *testing.T) {
	// Alternating extremes stress the unary chunking path (q >= 32).
	s := make([]uint16, 64)
	for i := range s {
		if i%2 == 0 {
			s[i] = 0
		} else {
			s[i] = 65535
		}
	}
	roundTrip(t, s)
}
