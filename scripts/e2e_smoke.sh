#!/usr/bin/env sh
# End-to-end smoke of the serving layer against the real binaries, in two
# scenarios:
#
# Single daemon:
#   1. build spaceprocd + spaceproc-router + loadgen
#   2. boot the daemon on a free port
#   3. drive one verified loadgen pass (-verify checks every served
#      result bit-identical to an in-process run of the same pipeline)
#   4. SIGTERM the daemon and require a clean "drained" exit
#
# Fleet:
#   5. boot three daemons (each with a telemetry sidecar) and a
#      spaceproc-router in front of them, its own sidecar aggregating
#      the fleet's /metrics
#   6. drive a verified loadgen pass through the router and, mid-run,
#      SIGTERM one daemon; require the router to eject it, the pass to
#      finish with zero failures and zero mismatches (failover + retries
#      absorb the kill), then restart the daemon on its old addresses and
#      require the router to readmit it
#   7. drive a second verified pass over the healed fleet with tracing
#      on; require the slowest request's trace ID to appear in the
#      loadgen trace file AND in the router's and a daemon's
#      /debug/trace — one trace crossing all three process boundaries —
#      and require /fleet/metrics, /fleet/healthz, and /debug/slowest
#      to serve coherent fleet telemetry
#   8. SIGTERM the router and the daemons and require clean drains
#
# No arguments. Exits non-zero on any failure. Used by `make e2e-smoke`
# and the CI e2e job.
set -eu

workdir=$(mktemp -d)
daemon_log="$workdir/spaceprocd.log"
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# await_line FILE PATTERN: polls FILE until a line matches sed PATTERN,
# prints the first match.
await_line() {
    file=$1
    pattern=$2
    for _ in $(seq 1 300); do
        line=$(sed -n "s/^$pattern//p" "$file" | head -n1)
        if [ -n "$line" ]; then
            echo "$line"
            return 0
        fi
        sleep 0.1
    done
    return 1
}

# await_grep FILE PATTERN: polls FILE until grep matches.
await_grep() {
    file=$1
    pattern=$2
    for _ in $(seq 1 300); do
        grep -q "$pattern" "$file" && return 0
        sleep 0.1
    done
    return 1
}

# await_exit PID: waits for the process to exit.
await_exit() {
    for _ in $(seq 1 300); do
        kill -0 "$1" 2>/dev/null || return 0
        sleep 0.1
    done
    return 1
}

echo "== building binaries"
go build -o "$workdir/spaceprocd" ./cmd/spaceprocd
go build -o "$workdir/spaceproc-router" ./cmd/spaceproc-router
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== booting spaceprocd"
"$workdir/spaceprocd" -addr 127.0.0.1:0 -workers 4 -tile 32 \
    -max-inflight 8 -drain-timeout 30s >"$daemon_log" 2>&1 &
daemon_pid=$!
pids="$daemon_pid"

if ! addr=$(await_line "$daemon_log" "serving on "); then
    echo "daemon never reported its address:" >&2
    cat "$daemon_log" >&2
    exit 1
fi
echo "daemon at $addr (pid $daemon_pid)"

echo "== loadgen with bit-identical verification"
"$workdir/loadgen" -addr "$addr" -clients 2 -requests 2 \
    -width 64 -height 64 -readouts 8 -verify

echo "== SIGTERM drain"
kill -TERM "$daemon_pid"
if ! await_exit "$daemon_pid"; then
    echo "daemon did not exit after SIGTERM:" >&2
    cat "$daemon_log" >&2
    exit 1
fi
pids=""
if ! grep -q "^drained$" "$daemon_log"; then
    echo "daemon exited without draining:" >&2
    cat "$daemon_log" >&2
    exit 1
fi

echo "== booting a 3-daemon fleet (with telemetry sidecars)"
fleet_addrs=""
fleet_pids=""
for i in 1 2 3; do
    "$workdir/spaceprocd" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
        -workers 2 -tile 32 \
        -drain-timeout 30s >"$workdir/node$i.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    fleet_pids="$fleet_pids $pid"
    if ! naddr=$(await_line "$workdir/node$i.log" "serving on "); then
        echo "fleet node $i never reported its address:" >&2
        cat "$workdir/node$i.log" >&2
        exit 1
    fi
    if ! nmetrics=$(await_line "$workdir/node$i.log" "metrics on http:\/\/"); then
        echo "fleet node $i never reported its sidecar address:" >&2
        cat "$workdir/node$i.log" >&2
        exit 1
    fi
    nmetrics=${nmetrics%/metrics}
    fleet_addrs="$fleet_addrs,$naddr=$nmetrics"
    eval "node${i}_addr=\$naddr"
    eval "node${i}_metrics=\$nmetrics"
    eval "node${i}_pid=\$pid"
    echo "node $i at $naddr (pid $pid, metrics $nmetrics)"
done
fleet_addrs=${fleet_addrs#,}

echo "== booting spaceproc-router"
router_log="$workdir/router.log"
"$workdir/spaceproc-router" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
    -nodes "$fleet_addrs" \
    -probe-interval 100ms -probe-failures 2 -fleet-scrape 200ms \
    -drain-timeout 30s >"$router_log" 2>"$workdir/router_err.log" &
router_pid=$!
pids="$pids $router_pid"
if ! raddr=$(await_line "$router_log" "routing on "); then
    echo "router never reported its address:" >&2
    cat "$router_log" "$workdir/router_err.log" >&2
    exit 1
fi
if ! rmetrics=$(await_line "$router_log" "metrics on http:\/\/"); then
    echo "router never reported its sidecar address:" >&2
    cat "$router_log" "$workdir/router_err.log" >&2
    exit 1
fi
rmetrics=${rmetrics%/metrics}
echo "router at $raddr (pid $router_pid, metrics $rmetrics)"

echo "== loadgen through the router, one node killed mid-run"
"$workdir/loadgen" -addr "$raddr" -clients 2 -requests 25 \
    -width 64 -height 64 -readouts 8 -attempts 12 -verify \
    >"$workdir/loadgen_fleet.log" 2>&1 &
loadgen_pid=$!
pids="$pids $loadgen_pid"

sleep 0.3
echo "killing node 2 ($node2_addr)"
kill -TERM "$node2_pid"
if ! await_exit "$node2_pid"; then
    echo "killed node never exited:" >&2
    cat "$workdir/node2.log" >&2
    exit 1
fi
if ! await_grep "$workdir/router_err.log" "fleet node ejected"; then
    echo "router never ejected the dead node:" >&2
    cat "$workdir/router_err.log" >&2
    exit 1
fi
echo "router ejected node 2"

echo "restarting node 2 on $node2_addr"
# The router pinned node 2's health address from -nodes, so the restart
# must bring the sidecar back on the same port too.
"$workdir/spaceprocd" -addr "$node2_addr" -metrics "$node2_metrics" \
    -workers 2 -tile 32 \
    -drain-timeout 30s >"$workdir/node2b.log" 2>&1 &
node2_pid=$!
pids="$pids $node2_pid"
if ! await_line "$workdir/node2b.log" "serving on " >/dev/null; then
    echo "restarted node never came up:" >&2
    cat "$workdir/node2b.log" >&2
    exit 1
fi
if ! await_grep "$workdir/router_err.log" "fleet node readmitted"; then
    echo "router never readmitted the restarted node:" >&2
    cat "$workdir/router_err.log" >&2
    exit 1
fi
echo "router readmitted node 2"

if ! wait "$loadgen_pid"; then
    echo "fleet loadgen failed:" >&2
    cat "$workdir/loadgen_fleet.log" >&2
    exit 1
fi
if ! grep -q " 0 failed" "$workdir/loadgen_fleet.log"; then
    echo "fleet loadgen lost requests across the kill:" >&2
    cat "$workdir/loadgen_fleet.log" >&2
    exit 1
fi
if ! grep -q "^verify: 0 mismatched$" "$workdir/loadgen_fleet.log"; then
    echo "fleet results not bit-identical:" >&2
    cat "$workdir/loadgen_fleet.log" >&2
    exit 1
fi

echo "== loadgen over the healed fleet, tracing on"
trace_file="$workdir/loadgen_trace.json"
traced_log="$workdir/loadgen_traced.log"
"$workdir/loadgen" -addr "$raddr" -clients 2 -requests 2 \
    -width 64 -height 64 -readouts 8 -verify \
    -trace "$trace_file" -slowest 3 >"$traced_log" 2>&1
cat "$traced_log"

echo "== one trace crosses client, router, and daemon"
# loadgen printed its slowest requests with their trace IDs; the slowest
# one must appear in the client-side Chrome export and in the /debug/trace
# of the router and of whichever daemon served it.
tid=$(sed -n 's/^slow 1: .*trace \([0-9a-f]\{16\}\).*/\1/p' "$traced_log" | head -n1)
if [ -z "$tid" ]; then
    echo "loadgen printed no slowest-request trace ID:" >&2
    cat "$traced_log" >&2
    exit 1
fi
echo "slowest trace: $tid"
if ! grep -q "\"trace_id\": \"$tid\"" "$trace_file"; then
    echo "trace $tid missing from the loadgen Chrome export $trace_file" >&2
    exit 1
fi
curl -sf "http://$rmetrics/debug/trace" >"$workdir/router_trace.json"
if ! grep -q "\"trace_id\": \"$tid\"" "$workdir/router_trace.json"; then
    echo "trace $tid missing from the router's /debug/trace" >&2
    exit 1
fi
daemon_hit=0
for i in 1 2 3; do
    eval "nmetrics=\$node${i}_metrics"
    if curl -sf "http://$nmetrics/debug/trace" | grep -q "\"trace_id\": \"$tid\""; then
        daemon_hit=1
        echo "trace $tid served by node $i"
    fi
done
if [ "$daemon_hit" != 1 ]; then
    echo "trace $tid missing from every daemon's /debug/trace" >&2
    exit 1
fi

echo "== fleet telemetry endpoints"
# Let the aggregator take a post-run scrape so /fleet/metrics reflects
# the traced pass.
sleep 0.5
curl -sf "http://$rmetrics/fleet/metrics" >"$workdir/fleet_metrics.txt"
for i in 1 2 3; do
    eval "naddr=\$node${i}_addr"
    if ! grep -q "^# node $naddr up " "$workdir/fleet_metrics.txt"; then
        echo "/fleet/metrics does not show node $i ($naddr) up:" >&2
        cat "$workdir/fleet_metrics.txt" >&2
        exit 1
    fi
done
if ! grep -q "^# fleet merged$" "$workdir/fleet_metrics.txt"; then
    echo "/fleet/metrics has no merged section:" >&2
    cat "$workdir/fleet_metrics.txt" >&2
    exit 1
fi
# The merged page is itself a parseable exposition whose counters are the
# per-node sums: check serve_requests_total adds up.
if ! awk '
    /^# fleet merged$/ { merged = 1; next }
    $1 == "counter" && $2 == "serve_requests_total" {
        if (merged) { total = $3 } else { sum += $3 }
    }
    END { exit !(total > 0 && total == sum) }
' "$workdir/fleet_metrics.txt"; then
    echo "merged serve_requests_total does not equal the per-node sum:" >&2
    cat "$workdir/fleet_metrics.txt" >&2
    exit 1
fi
if ! curl -sf "http://$rmetrics/fleet/healthz" | grep -q '"status":"ok"'; then
    echo "/fleet/healthz not ok with the whole fleet up" >&2
    curl -s "http://$rmetrics/fleet/healthz" >&2 || true
    exit 1
fi
if ! curl -sf "http://$rmetrics/debug/slowest" | grep -q "\"trace_id\""; then
    echo "router /debug/slowest lists no traced requests" >&2
    exit 1
fi
echo "fleet telemetry OK"

echo "== SIGTERM drains (router, then fleet)"
kill -TERM "$router_pid"
if ! await_exit "$router_pid"; then
    echo "router did not exit after SIGTERM:" >&2
    cat "$router_log" "$workdir/router_err.log" >&2
    exit 1
fi
if ! grep -q "^drained$" "$router_log"; then
    echo "router exited without draining:" >&2
    cat "$router_log" >&2
    exit 1
fi
for i in 1 3; do
    eval "pid=\$node${i}_pid"
    kill -TERM "$pid"
done
kill -TERM "$node2_pid"
for i in 1 3; do
    eval "pid=\$node${i}_pid"
    if ! await_exit "$pid"; then
        echo "fleet node $i did not exit after SIGTERM" >&2
        exit 1
    fi
done
if ! await_exit "$node2_pid"; then
    echo "restarted node did not exit after SIGTERM" >&2
    exit 1
fi
pids=""
echo "e2e smoke OK"

echo "== crash-recovery scenario (WAL replay + dedupe)"
sh "$(dirname "$0")/e2e_crash.sh"
