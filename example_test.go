package spaceproc_test

import (
	"bytes"
	"fmt"

	"spaceproc"
)

// ExampleAlgoNGST demonstrates the core repair loop on a single temporal
// series: inject uncorrelated bit flips, preprocess, measure the residual.
func ExampleAlgoNGST() {
	ideal, err := spaceproc.GaussianSeries(spaceproc.SeriesConfig{
		N: spaceproc.BaselineReadouts, Initial: 27000, Sigma: 0,
	}, spaceproc.NewRNG(1))
	if err != nil {
		panic(err)
	}
	damaged := ideal.Clone()
	damaged[20] ^= 1 << 14 // one high-bit flip

	pre, err := spaceproc.NewAlgoNGST(spaceproc.DefaultNGSTConfig())
	if err != nil {
		panic(err)
	}
	pre.ProcessSeries(damaged)
	fmt.Printf("repaired: %v\n", damaged[20] == ideal[20])
	// Output:
	// repaired: true
}

// ExampleUncorrelated shows the Section 2.2.2 fault model's statistics.
func ExampleUncorrelated() {
	words := make([]uint16, 10000)
	flips := spaceproc.Uncorrelated{Gamma0: 0.01}.InjectWords16(words, spaceproc.NewRNG(2))
	// ~1% of 160000 bits.
	fmt.Printf("flips within expectation: %v\n", flips > 1400 && flips < 1800)
	// Output:
	// flips within expectation: true
}

// ExampleCorrelated shows eq. 2's run-length escalation.
func ExampleCorrelated() {
	m := spaceproc.Correlated{GammaIni: 0.3}
	fmt.Printf("fresh bit: %.2f\n", m.FlipProb(0))
	fmt.Printf("long run limit: %.3f\n", m.FlipProb(1000))
	// Output:
	// fresh bit: 0.30
	// long run limit: 0.429
}

// ExampleRiceEncode round-trips a smooth series through the downlink
// coder.
func ExampleRiceEncode() {
	samples := []uint16{27000, 27003, 26999, 27001, 27000, 27002}
	enc := spaceproc.RiceEncode(samples)
	dec, err := spaceproc.RiceDecode(enc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round trip ok: %v\n", len(dec) == len(samples) && dec[0] == samples[0])
	// Output:
	// round trip ok: true
}

// ExampleSanityCheckFITS repairs a damaged FITS header using the
// application's expected geometry.
func ExampleSanityCheckFITS() {
	im := spaceproc.NewImage(16, 16)
	raw := spaceproc.EncodeFITSImage(im)
	idx := bytes.Index(raw, []byte("NAXIS1"))
	raw[idx] ^= 0x02 // one bit flip in a mandatory keyword

	_, undecodable := spaceproc.DecodeFITS(raw)
	rep, fixed := spaceproc.SanityCheckFITS(raw, spaceproc.WithExpectedAxes(16, 16))
	_, err := spaceproc.DecodeFITS(fixed)
	fmt.Printf("damaged decodable=%v\n", undecodable == nil)
	fmt.Printf("repaired=%d fatal=%v decodable=%v\n", rep.Repaired, rep.Fatal, err == nil)
	// Output:
	// damaged decodable=false
	// repaired=1 fatal=false decodable=true
}
