package synth

import (
	"math"
	"testing"

	"spaceproc/internal/dataset"
	"spaceproc/internal/physics"
	"spaceproc/internal/rng"
)

func TestGaussianSeriesLengthAndStart(t *testing.T) {
	cfg := SeriesConfig{N: 64, Initial: 27000, Sigma: 250}
	ser, err := GaussianSeries(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ser) != 64 {
		t.Fatalf("len = %d, want 64", len(ser))
	}
	if ser[0] != 27000 {
		t.Fatalf("Pi(1) = %d, want 27000", ser[0])
	}
}

func TestGaussianSeriesZeroSigmaIsConstant(t *testing.T) {
	ser, err := GaussianSeries(SeriesConfig{N: 64, Initial: 27000, Sigma: 0}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ser {
		if v != 27000 {
			t.Fatalf("index %d = %d, want constant 27000", i, v)
		}
	}
}

func TestGaussianSeriesStepStatistics(t *testing.T) {
	// The step Pi(i+1)-Pi(i) should have mean ~0 and stddev ~sigma.
	const sigma = 250.0
	src := rng.New(3)
	var steps []float64
	for d := 0; d < 200; d++ {
		ser, err := GaussianSeries(SeriesConfig{N: 64, Initial: 27000, Sigma: sigma}, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ser); i++ {
			steps = append(steps, float64(ser[i])-float64(ser[i-1]))
		}
	}
	var sum, sumSq float64
	for _, s := range steps {
		sum += s
		sumSq += s * s
	}
	n := float64(len(steps))
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 6*sigma/math.Sqrt(n) {
		t.Errorf("step mean = %v, want ~0", mean)
	}
	if math.Abs(sd-sigma) > 0.05*sigma {
		t.Errorf("step stddev = %v, want ~%v", sd, sigma)
	}
}

func TestGaussianSeriesClamping(t *testing.T) {
	// Huge sigma forces values onto the rails without wrapping.
	src := rng.New(4)
	ser, err := GaussianSeries(SeriesConfig{N: 256, Initial: 60000, Sigma: 8000}, src)
	if err != nil {
		t.Fatal(err)
	}
	sawRail := false
	for _, v := range ser {
		if v == PixelMax || v == 0 {
			sawRail = true
		}
	}
	if !sawRail {
		t.Error("sigma=8000 walk never touched the rails; clamping untested")
	}
}

func TestGaussianSeriesValidation(t *testing.T) {
	if _, err := GaussianSeries(SeriesConfig{N: 0}, rng.New(1)); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := GaussianSeries(SeriesConfig{N: 4, Sigma: -1}, rng.New(1)); err == nil {
		t.Error("negative sigma should error")
	}
}

func TestGaussianStack(t *testing.T) {
	cfg := SeriesConfig{N: 8, Initial: 20000, Sigma: 100}
	s, err := GaussianStack(cfg, 16, 12, 5000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 || s.Width() != 16 || s.Height() != 12 {
		t.Fatalf("stack geometry (%d,%d,%d)", s.Len(), s.Width(), s.Height())
	}
	// Spread should give differing initial values across pixels.
	a := s.Frames[0].At(0, 0)
	differs := false
	for x := 1; x < 16; x++ {
		if s.Frames[0].At(x, 0) != a {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("spread > 0 produced identical initial values everywhere")
	}
	if _, err := GaussianStack(cfg, 0, 4, 0, rng.New(5)); err == nil {
		t.Error("zero width should error")
	}
}

func TestNewSceneGeometryAndDeterminism(t *testing.T) {
	cfg := DefaultSceneConfig()
	cfg.Width, cfg.Height = 32, 32
	a, err := NewScene(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScene(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ideal.Len() != cfg.Readouts || a.Ideal.Width() != 32 {
		t.Fatalf("scene geometry (%d,%d)", a.Ideal.Len(), a.Ideal.Width())
	}
	for i := range a.Ideal.Frames {
		for j := range a.Ideal.Frames[i].Pix {
			if a.Ideal.Frames[i].Pix[j] != b.Ideal.Frames[i].Pix[j] {
				t.Fatal("same seed produced different scenes")
			}
		}
	}
}

func TestNewSceneCosmicRaysArePersistentSteps(t *testing.T) {
	cfg := DefaultSceneConfig()
	cfg.Width, cfg.Height = 48, 48
	cfg.TemporalSigma = 0 // isolate the CR signal
	sc, err := NewScene(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.CRHits) == 0 {
		t.Fatal("10% CR rate produced no hits on 2304 pixels")
	}
	for off, hit := range sc.CRHits {
		x, y := off%cfg.Width, off/cfg.Width
		ideal := sc.Ideal.SeriesAt(x, y)
		obs := sc.Observed.SeriesAt(x, y)
		for i := range obs {
			if i < hit && obs[i] != ideal[i] {
				t.Fatalf("pixel (%d,%d): CR contaminated readout %d before hit %d", x, y, i, hit)
			}
			if i >= hit && obs[i] <= ideal[i] && ideal[i] < PixelMax {
				t.Fatalf("pixel (%d,%d): readout %d shows no CR step (obs %d ideal %d)", x, y, i, obs[i], ideal[i])
			}
		}
	}
}

func TestNewSceneCleanPixelsMatch(t *testing.T) {
	cfg := DefaultSceneConfig()
	cfg.Width, cfg.Height = 32, 32
	sc, err := NewScene(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if _, hit := sc.CRHits[y*32+x]; hit {
				continue
			}
			for i := range sc.Ideal.Frames {
				if sc.Ideal.Frames[i].At(x, y) != sc.Observed.Frames[i].At(x, y) {
					t.Fatalf("clean pixel (%d,%d) differs at readout %d", x, y, i)
				}
			}
		}
	}
}

func TestSceneValidation(t *testing.T) {
	bad := DefaultSceneConfig()
	bad.CRRate = 1.5
	if _, err := NewScene(bad, rng.New(1)); err == nil {
		t.Error("CRRate > 1 should error")
	}
	bad = DefaultSceneConfig()
	bad.Readouts = 0
	if _, err := NewScene(bad, rng.New(1)); err == nil {
		t.Error("zero readouts should error")
	}
}

func TestOTISKindString(t *testing.T) {
	if Blob.String() != "Blob" || Stripe.String() != "Stripe" || Spots.String() != "Spots" {
		t.Fatal("OTISKind names wrong")
	}
	if OTISKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestOTISScenesWithinPhysicalBounds(t *testing.T) {
	for _, kind := range []OTISKind{Blob, Stripe, Spots} {
		sc, err := NewOTISScene(DefaultOTISConfig(kind), rng.New(11))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for i, temp := range sc.Temps {
			if temp < physics.MinSceneTemp || temp > physics.MaxSceneTemp {
				t.Fatalf("%v: temp[%d] = %v K out of bounds", kind, i, temp)
			}
		}
		for b, lambda := range sc.Wavelengths {
			lo, hi := physics.RadianceBounds(lambda)
			for i, v := range sc.Cube.Band(b) {
				if float64(v) < 0 || float64(v) > hi {
					t.Fatalf("%v band %d sample %d = %v outside [0,%v] (lo=%v)", kind, b, i, v, hi, lo)
				}
			}
		}
	}
}

func TestOTISMorphologies(t *testing.T) {
	// Variance structure must match the described morphology.
	variance := func(f []float64, idx []int) float64 {
		var sum, sumSq float64
		for _, i := range idx {
			sum += f[i]
			sumSq += f[i] * f[i]
		}
		n := float64(len(idx))
		m := sum / n
		return sumSq/n - m*m
	}
	cfg := DefaultOTISConfig(Stripe)
	sc, err := NewOTISScene(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	var band, calm []int
	bandLo, bandHi := cfg.Width*5/12, cfg.Width*7/12
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			if x >= bandLo && x < bandHi {
				band = append(band, y*cfg.Width+x)
			} else if x < bandLo-4 || x >= bandHi+4 {
				calm = append(calm, y*cfg.Width+x)
			}
		}
	}
	vb, vc := variance(sc.Temps, band), variance(sc.Temps, calm)
	if vb < 5*vc {
		t.Errorf("Stripe: central band variance %v not markedly above calm %v", vb, vc)
	}

	// Spots must be rougher overall than Blob.
	rough := func(kind OTISKind, seed uint64) float64 {
		sc, err := NewOTISScene(DefaultOTISConfig(kind), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		w := DefaultOTISConfig(kind).Width
		var sum float64
		var n int
		for y := 0; y < w; y++ {
			for x := 1; x < w; x++ {
				d := sc.Temps[y*w+x] - sc.Temps[y*w+x-1]
				sum += d * d
				n++
			}
		}
		return sum / float64(n)
	}
	var blobR, spotsR float64
	for seed := uint64(0); seed < 5; seed++ {
		blobR += rough(Blob, 100+seed)
		spotsR += rough(Spots, 100+seed)
	}
	if spotsR < 2*blobR {
		t.Errorf("Spots roughness %v not clearly above Blob %v", spotsR, blobR)
	}
}

func TestOTISValidation(t *testing.T) {
	bad := DefaultOTISConfig(Blob)
	bad.Emissivity = 0
	if _, err := NewOTISScene(bad, rng.New(1)); err == nil {
		t.Error("zero emissivity should error")
	}
	bad = DefaultOTISConfig(Blob)
	bad.Kind = OTISKind(0)
	if _, err := NewOTISScene(bad, rng.New(1)); err == nil {
		t.Error("unknown kind should error")
	}
	bad = DefaultOTISConfig(Blob)
	bad.BaseTemp = 5000
	if _, err := NewOTISScene(bad, rng.New(1)); err == nil {
		t.Error("unphysical base temperature should error")
	}
}

func TestDefaultSceneConfigMatchesPaperGeometry(t *testing.T) {
	cfg := DefaultSceneConfig()
	if cfg.Width != dataset.TileSize || cfg.Readouts != dataset.BaselineReadouts {
		t.Fatalf("default scene %dx%d/%d readouts does not match the paper's tile geometry",
			cfg.Width, cfg.Height, cfg.Readouts)
	}
	if cfg.CRRate != 0.10 {
		t.Fatalf("default CR rate %v; the paper anticipates 10%% data loss", cfg.CRRate)
	}
}
