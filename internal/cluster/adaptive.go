package cluster

import (
	"fmt"
	"sort"

	"spaceproc/internal/core"
	"spaceproc/internal/crreject"
	"spaceproc/internal/dataset"
)

// The paper notes that "the slack CPU time in the slave nodes can be very
// well utilized for a suitable fault-tolerance scheme" (Section 2.1) and
// that sensitivity trades precision against "overhead in execution time
// and associated power consumption" (Section 3.2). AdaptiveWorker makes
// that trade explicit: given a per-tile compute budget and a measured
// cost model, it runs the highest sensitivity that fits the slack.

// CostModel maps sensitivity levels to their measured per-series cost in
// arbitrary units (typically nanoseconds, measured by CalibrateCost or a
// benchmark). Levels must be ascending in Lambda.
type CostModel struct {
	// Lambdas are the available sensitivity levels, ascending.
	Lambdas []int
	// UnitCost[i] is the per-series cost of running at Lambdas[i].
	UnitCost []float64
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if len(m.Lambdas) == 0 || len(m.Lambdas) != len(m.UnitCost) {
		return fmt.Errorf("cluster: cost model size mismatch (%d lambdas, %d costs)",
			len(m.Lambdas), len(m.UnitCost))
	}
	if !sort.IntsAreSorted(m.Lambdas) {
		return fmt.Errorf("cluster: cost model lambdas must be ascending")
	}
	for i, c := range m.UnitCost {
		if c < 0 {
			return fmt.Errorf("cluster: negative cost at level %d", i)
		}
	}
	return nil
}

// Pick returns the highest sensitivity whose estimated tile cost
// (unit cost x series count) fits the budget, or the lowest level when
// nothing fits (the Lambda floor still buys the header sanity analysis).
func (m CostModel) Pick(budget float64, seriesCount int) int {
	best := m.Lambdas[0]
	for i, lambda := range m.Lambdas {
		if m.UnitCost[i]*float64(seriesCount) <= budget {
			best = lambda
		}
	}
	return best
}

// AdaptiveWorker preprocesses each tile at the highest sensitivity its
// budget allows, then integrates.
type AdaptiveWorker struct {
	model   CostModel
	upsilon int
	budget  float64
	rej     *crreject.Rejector

	// lastLambda records the sensitivity chosen for the most recent tile
	// (observable for tests and telemetry).
	lastLambda int
}

var _ Worker = (*AdaptiveWorker)(nil)

// NewAdaptiveWorker builds a worker with the given per-tile budget, in the
// cost model's units.
func NewAdaptiveWorker(model CostModel, upsilon int, budget float64, rejCfg crreject.Config) (*AdaptiveWorker, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("cluster: negative budget %v", budget)
	}
	rej, err := crreject.New(rejCfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveWorker{model: model, upsilon: upsilon, budget: budget, rej: rej}, nil
}

// LastLambda returns the sensitivity used for the most recent tile.
func (w *AdaptiveWorker) LastLambda() int { return w.lastLambda }

// ProcessTile implements Worker.
func (w *AdaptiveWorker) ProcessTile(t dataset.Tile) (TileResult, error) {
	if t.Stack == nil || t.Stack.Len() == 0 {
		return TileResult{}, fmt.Errorf("cluster: empty tile")
	}
	seriesCount := t.Stack.Width() * t.Stack.Height()
	lambda := w.model.Pick(w.budget, seriesCount)
	w.lastLambda = lambda
	if lambda > 0 {
		pre, err := core.NewAlgoNGST(core.NGSTConfig{Upsilon: w.upsilon, Sensitivity: lambda})
		if err != nil {
			return TileResult{}, err
		}
		core.ProcessStackWith(pre, t.Stack)
	}
	img, stats := w.rej.Integrate(t.Stack)
	return TileResult{Index: t.Index, X0: t.X0, Y0: t.Y0, Image: img, Stats: stats}, nil
}
