package sweep

import (
	"fmt"

	"spaceproc/internal/dataset"
	"spaceproc/internal/fault"
	"spaceproc/internal/fits"
	"spaceproc/internal/rng"
	"spaceproc/internal/telemetry"
)

// HeaderConfig parameterizes the FITS-header extension experiment
// (Section 2.2.1 motivates header faults as catastrophic but the paper
// shows no figure for them; EXPERIMENTS.md records this one as an
// extension).
type HeaderConfig struct {
	// Trials is the number of damaged headers per measured point.
	Trials int
	// Width and Height are the image geometry behind the header.
	Width, Height int
	// Telemetry, when non-nil, records the experiment run as a trace
	// root in the registry's tracer.
	Telemetry *telemetry.Registry
}

// DefaultHeaderConfig returns the defaults for the header experiment.
func DefaultHeaderConfig() HeaderConfig {
	return HeaderConfig{Trials: 200, Width: 128, Height: 128}
}

// Validate reports whether the configuration is usable.
func (c HeaderConfig) Validate() error {
	if c.Trials <= 0 || c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("sweep: invalid header config %+v", c)
	}
	return nil
}

// FigHeader measures the probability that a FITS file remains decodable
// after uncorrelated bit flips in its header block, with and without the
// sanity-analysis repair (and with the application's expected geometry).
func FigHeader(cfg HeaderConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "figheader")()
	res := &Result{
		ID:     "figheader",
		Title:  "FITS decodability vs header bit-flip probability",
		XLabel: "Gamma0 (header bits)",
		YLabel: "fraction of files decodable",
	}

	im := dataset.NewImage(cfg.Width, cfg.Height)
	src := rng.New(seed)
	for i := range im.Pix {
		im.Pix[i] = uint16(20000 + src.Intn(4000))
	}
	clean := fits.EncodeImage(im)

	withSum, err := fits.WithDataSum(clean)
	if err != nil {
		return nil, err
	}

	sweepG := []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	raw := Series{Name: "NoRepair"}
	repaired := Series{Name: "SanityRepair"}
	repairedHint := Series{Name: "SanityRepair+Geometry"}
	// DataSumDetects measures a different quantity on the same axis: the
	// fraction of *data-unit* damage (at the same per-bit rate) that the
	// DATASUM card detects — detection-only, for the comparison with the
	// correcting layers.
	detects := Series{Name: "DataSumDetects"}
	for _, g := range sweepG {
		injector := fault.Uncorrelated{Gamma0: g}
		var okRaw, okRep, okHint, detected, damagedData int
		for trial := 0; trial < cfg.Trials; trial++ {
			damaged := append([]byte(nil), clean...)
			injector.InjectBytes(damaged[:fits.BlockSize], rng.NewStream(seed+1, uint64(trial)))
			if _, err := fits.Decode(damaged); err == nil {
				okRaw++
			}
			if rep, out := fits.SanityCheck(damaged); !rep.Fatal {
				if _, err := fits.Decode(out); err == nil {
					okRep++
				}
			}
			if rep, out := fits.SanityCheck(damaged, fits.WithExpectedAxes(cfg.Width, cfg.Height)); !rep.Fatal {
				if _, err := fits.Decode(out); err == nil {
					okHint++
				}
			}

			sumDamaged := append([]byte(nil), withSum...)
			n := injector.InjectBytes(sumDamaged[fits.BlockSize:fits.BlockSize+cfg.Width*cfg.Height*2],
				rng.NewStream(seed+2, uint64(trial)))
			if n == 0 {
				continue
			}
			damagedData++
			if ok, err := fits.VerifyDataSum(sumDamaged); err == nil && !ok {
				detected++
			}
		}
		n := float64(cfg.Trials)
		raw.Points = append(raw.Points, Point{X: g, Y: float64(okRaw) / n})
		repaired.Points = append(repaired.Points, Point{X: g, Y: float64(okRep) / n})
		repairedHint.Points = append(repairedHint.Points, Point{X: g, Y: float64(okHint) / n})
		det := 1.0
		if damagedData > 0 {
			det = float64(detected) / float64(damagedData)
		}
		detects.Points = append(detects.Points, Point{X: g, Y: det})
	}
	res.Series = append(res.Series, raw, repaired, repairedHint, detects)
	return res, nil
}
