package spaceproc

import (
	"spaceproc/internal/cluster"
	"spaceproc/internal/fault"
	"spaceproc/internal/perm"
)

// Constant-memory fault campaigns: a seeded, cycle-walking Feistel
// permutation (internal/perm) enumerates fault sites as the prefix of a
// keyed permutation of the bit domain — O(1) memory, reproducible from
// (seed, rounds), and exactly shardable — and the campaign engine
// (internal/fault) expands permuted anchors through correlated upset
// models and injects or summarizes them at planetary scale.
type (
	// FeistelPerm is a keyed permutation of [0, N); see NewFeistelPerm.
	FeistelPerm = perm.Perm
	// PermShard enumerates one shard of a permutation in O(1) memory.
	PermShard = perm.ShardIter
	// FaultCampaign is a constant-memory injection plan: a budget of
	// anchor sites drawn through the permutation and expanded through a
	// CampaignModel.
	FaultCampaign = fault.Campaign
	// CampaignModel expands a permuted anchor into the bit flips of one
	// fault event.
	CampaignModel = fault.SiteModel
	// CampaignGeometry describes the bit domain a campaign runs over.
	CampaignGeometry = fault.Geometry
	// SingleBit flips exactly the anchor bit (the exact-count analogue of
	// Uncorrelated).
	SingleBit = fault.SingleBit
	// BurstRun is the MBU model: a run of consecutive flips per anchor.
	BurstRun = fault.BurstRun
	// ColumnWipe is the SEFI model: the anchor's whole column dies within
	// its frame.
	ColumnWipe = fault.ColumnWipe
	// FlipSet is the order-independent constant-memory summary of a
	// campaign's flips (toggle count + position digest).
	FlipSet = fault.FlipSet
	// CampaignShard names one shard of a campaign for worker dispatch.
	CampaignShard = cluster.CampaignShard
)

// DefaultPermRounds is the Feistel round count used when 0 is passed.
const DefaultPermRounds = perm.DefaultRounds

// NewFeistelPerm builds the keyed permutation of [0, n); rounds 0 selects
// DefaultPermRounds.
func NewFeistelPerm(n, seed uint64, rounds int) (*FeistelPerm, error) {
	return perm.New(n, seed, rounds)
}

// SeriesCampaignGeometry is the bit domain of a temporal series.
func SeriesCampaignGeometry(s Series) CampaignGeometry { return fault.SeriesGeometry(s) }

// StackCampaignGeometry is the bit domain of a readout stack.
func StackCampaignGeometry(s *Stack) CampaignGeometry { return fault.StackGeometry(s) }

// CubeCampaignGeometry is the bit domain of a spectral cube.
func CubeCampaignGeometry(c *Cube) CampaignGeometry { return fault.CubeGeometry(c) }
