package sweep

import (
	"math"

	"spaceproc/internal/core"
	"spaceproc/internal/dataset"
	"spaceproc/internal/fault"
	"spaceproc/internal/metrics"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

// The ablation experiments justify the design choices recorded in
// DESIGN.md section 4: each one removes a single mechanism from Algorithm 1
// and measures the damage.

// ablationGammas is the fault-rate axis of the voting/threshold ablations.
var ablationGammas = []float64{0.0025, 0.01, 0.025, 0.05}

// AblationVoting compares the full algorithm against variants with the
// window-A quorum vote and/or the carry-propagation guard removed.
func AblationVoting(cfg NGSTConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "ablation_voting")()
	res := &Result{
		ID:     "ablation-voting",
		Title:  "voting mechanism ablation (Psi vs Gamma0)",
		XLabel: "Gamma0",
		YLabel: "average relative error Psi",
	}
	variants := []algoVariant{
		{"Full", core.NGSTConfig{Upsilon: 4, Sensitivity: 80}},
		{"NoQuorum", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, DisableQuorum: true}},
		{"NoCarryGuard", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, DisableCarryGuard: true}},
		{"NoGuards", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, DisableQuorum: true, DisableCarryGuard: true}},
	}
	return res, runSeriesVariants(res, cfg, seed, variants)
}

// AblationThresholds compares the dynamic data-derived bit windows with
// static windows and with the literal (sign-uncorrected) Phi formula.
func AblationThresholds(cfg NGSTConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "ablation_thresholds")()
	res := &Result{
		ID:     "ablation-thresholds",
		Title:  "threshold ablation on mixed-sigma data: dynamic vs static windows vs literal Phi",
		XLabel: "Gamma0",
		YLabel: "average relative error Psi",
	}
	variants := []algoVariant{
		{"Dynamic", core.NGSTConfig{Upsilon: 4, Sensitivity: 80}},
		// Static boundaries can be tuned for one sigma, but the datasets
		// here mix sigma over [10, 1000] per trial — Section 3.3's claim
		// is exactly that fixed parameters cannot follow the data.
		{"Static(C<9,A>=12)", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, StaticWindows: true, StaticLSB: 9, StaticMSB: 12}},
		{"Static(C<6,A>=14)", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, StaticWindows: true, StaticLSB: 6, StaticMSB: 14}},
		{"LiteralPhi", core.NGSTConfig{Upsilon: 4, Sensitivity: 80, LiteralPhi: true}},
	}

	for _, v := range variants {
		a, err := core.NewAlgoNGST(v.cfg)
		if err != nil {
			return nil, err
		}
		a.Instrument(cfg.Telemetry)
		s := Series{Name: v.name}
		for _, g := range ablationGammas {
			s.Points = append(s.Points, Point{X: g, Y: mixedSigmaError(cfg, a, seed, g)})
		}
		res.Series = append(res.Series, s)
	}
	raw := Series{Name: "NoPreprocessing"}
	for _, g := range ablationGammas {
		raw.Points = append(raw.Points, Point{X: g, Y: mixedSigmaError(cfg, nil, seed, g)})
	}
	res.Series = append(res.Series, raw)
	return res, nil
}

// mixedSigmaError is seriesPreprocessorError over datasets whose sigma is
// drawn log-uniformly from [10, 1000] per trial.
func mixedSigmaError(cfg NGSTConfig, pre core.SeriesPreprocessor, seed uint64, gamma0 float64) float64 {
	injector := fault.Uncorrelated{Gamma0: gamma0}
	var acc metrics.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		sigSrc := rng.NewStream(seed, uint64(trial)*3)
		dataSrc := rng.NewStream(seed, uint64(trial)*3+1)
		faultSrc := rng.NewStream(seed, uint64(trial)*3+2)
		sigma := math.Pow(10, 1+2*sigSrc.Float64())
		ideal, err := synth.GaussianSeries(synth.SeriesConfig{N: cfg.N, Initial: cfg.Initial, Sigma: sigma}, dataSrc)
		if err != nil {
			panic(err)
		}
		damaged := ideal.Clone()
		injector.InjectSeries(damaged, faultSrc)
		if pre != nil {
			pre.ProcessSeries(damaged)
		}
		acc.Add(metrics.SeriesError(damaged, ideal))
	}
	return acc.Mean()
}

// algoVariant names one configured Algorithm 1 variant.
type algoVariant struct {
	name string
	cfg  core.NGSTConfig
}

// runSeriesVariants fills res with one series per algorithm variant over
// the ablation fault-rate axis, plus the no-preprocessing reference.
func runSeriesVariants(res *Result, cfg NGSTConfig, seed uint64, variants []algoVariant) error {
	for _, v := range variants {
		a, err := core.NewAlgoNGST(v.cfg)
		if err != nil {
			return err
		}
		a.Instrument(cfg.Telemetry)
		s := Series{Name: v.name}
		for _, g := range ablationGammas {
			injector := fault.Uncorrelated{Gamma0: g}
			psi := seriesPreprocessorError(cfg, a, seed, func(ser dataset.Series, src *rng.Source) {
				injector.InjectSeries(ser, src)
			})
			s.Points = append(s.Points, Point{X: g, Y: psi})
		}
		res.Series = append(res.Series, s)
	}
	raw := Series{Name: "NoPreprocessing"}
	for _, g := range ablationGammas {
		injector := fault.Uncorrelated{Gamma0: g}
		psi := seriesPreprocessorError(cfg, nil, seed, func(ser dataset.Series, src *rng.Source) {
			injector.InjectSeries(ser, src)
		})
		raw.Points = append(raw.Points, Point{X: g, Y: psi})
	}
	res.Series = append(res.Series, raw)
	return nil
}

// AblationLayout reproduces the Section 8 recommendation as an experiment:
// under contiguous block (burst) faults, a series-major memory layout
// loses whole temporal series at once, while an interleaved (frame-major)
// layout spreads the damage across coordinates so each series stays
// repairable. Psi is measured after preprocessing, as a function of the
// burst length.
func AblationLayout(cfg NGSTConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "ablation_layout")()
	res := &Result{
		ID:     "ablation-layout",
		Title:  "Section 8 memory layout under burst faults (Psi after preprocessing)",
		XLabel: "burst length (words)",
		YLabel: "average relative error Psi",
	}
	const coords = 256 // 16x16 coordinates
	bursts := []int{64, 256, 1024, 4096}

	a, err := core.NewAlgoNGST(core.NGSTConfig{Upsilon: 4, Sensitivity: 80})
	if err != nil {
		return nil, err
	}
	a.Instrument(cfg.Telemetry)

	for _, layout := range []string{"SeriesMajor", "FrameMajor"} {
		s := Series{Name: layout}
		for _, burstLen := range bursts {
			var acc metrics.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				dataSrc := rng.NewStream(seed, uint64(trial)*4)
				faultSrc := rng.NewStream(seed, uint64(trial)*4+1)
				posSrc := rng.NewStream(seed, uint64(trial)*4+2)

				ideal := make([]dataset.Series, coords)
				for c := range ideal {
					ser, err := synth.GaussianSeries(synth.SeriesConfig{
						N: cfg.N, Initial: cfg.Initial, Sigma: cfg.Sigma,
					}, dataSrc)
					if err != nil {
						return nil, err
					}
					ideal[c] = ser
				}

				// Lay the series out in memory, burst-damage the buffer,
				// and read them back.
				buf := make([]uint16, coords*cfg.N)
				place := func(c, i int) int {
					if layout == "SeriesMajor" {
						return c*cfg.N + i
					}
					return i*coords + c // frame-major: readout i of all coordinates together
				}
				for c, ser := range ideal {
					for i, v := range ser {
						buf[place(c, i)] = v
					}
				}
				b := fault.Burst{
					Offset:  posSrc.Intn(len(buf)),
					Length:  burstLen,
					Density: 0.5,
				}
				b.InjectWords16(buf, faultSrc)

				var psi metrics.Accumulator
				for c := range ideal {
					got := make(dataset.Series, cfg.N)
					for i := range got {
						got[i] = buf[place(c, i)]
					}
					a.ProcessSeries(got)
					psi.Add(metrics.SeriesError(got, ideal[c]))
				}
				acc.Add(psi.Mean())
			}
			s.Points = append(s.Points, Point{X: float64(burstLen), Y: acc.Mean()})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationLocality compares spatial against spectral voting for Algo_OTIS,
// reproducing the Section 7.1 finding that spatial locality "yields better
// expediency ... as spectral correlation falls drastically on either side
// of a band of wavelengths". The effect requires scenes whose emissivity
// varies across bands (real materials), which the synthesizer models with
// a non-flat emissivity spectrum.
func AblationLocality(cfg OTISSweepConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "ablation_locality")()
	res := &Result{
		ID:     "ablation-locality",
		Title:  "Algo_OTIS spatial vs spectral voting (Psi vs Gamma0)",
		XLabel: "Gamma0",
		YLabel: "average relative error Psi",
	}
	sceneCfg := cfg.Scene
	sceneCfg.Kind = synth.Blob
	sceneCfg.Spectrum = synth.QuartzLikeSpectrum(sceneCfg.Bands)

	for _, mode := range []core.OTISLocality{core.SpatialLocality, core.SpectralLocality} {
		s := Series{Name: mode.String()}
		for _, g := range ablationGammas {
			injector := fault.Uncorrelated{Gamma0: g}
			var acc metrics.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				sc, err := synth.NewOTISScene(sceneCfg, rng.NewStream(seed, uint64(trial)*2))
				if err != nil {
					return nil, err
				}
				damaged := sc.Cube.Clone()
				injector.InjectCube(damaged, rng.NewStream(seed, uint64(trial)*2+1))
				ocfg := core.DefaultOTISConfig(sc.Wavelengths)
				ocfg.Locality = mode
				a, err := core.NewAlgoOTIS(ocfg)
				if err != nil {
					return nil, err
				}
				a.Instrument(cfg.Telemetry)
				a.ProcessCube(damaged)
				acc.Add(metrics.CubeError(damaged, sc.Cube))
			}
			s.Points = append(s.Points, Point{X: g, Y: acc.Mean()})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
