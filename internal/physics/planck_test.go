package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpectralRadianceKnownValue(t *testing.T) {
	// Black body at 300 K, 10 micron: canonical value ~9.92e6 W/(m^2 sr m).
	got := SpectralRadiance(10e-6, 300)
	want := 9.92e6
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("SpectralRadiance(10um, 300K) = %g, want ~%g", got, want)
	}
}

func TestSpectralRadianceMonotoneInTemperature(t *testing.T) {
	lambda := 10e-6
	prev := 0.0
	for temp := 100.0; temp <= 1000; temp += 50 {
		r := SpectralRadiance(lambda, temp)
		if r <= prev {
			t.Fatalf("radiance not increasing at T=%v: %g <= %g", temp, r, prev)
		}
		prev = r
	}
}

func TestSpectralRadianceEdgeCases(t *testing.T) {
	if SpectralRadiance(0, 300) != 0 {
		t.Error("lambda=0 should give 0")
	}
	if SpectralRadiance(10e-6, 0) != 0 {
		t.Error("T=0 should give 0")
	}
	if SpectralRadiance(-1, -1) != 0 {
		t.Error("negative inputs should give 0")
	}
	// Extremely cold: x > 700 underflow guard.
	if r := SpectralRadiance(1e-9, 1); r != 0 {
		t.Errorf("deep underflow should give 0, got %g", r)
	}
}

func TestBrightnessTemperatureInvertsPlanck(t *testing.T) {
	for _, lambda := range []float64{8e-6, 10e-6, 14e-6} {
		for _, temp := range []float64{150, 220, 300, 500, 1500} {
			r := SpectralRadiance(lambda, temp)
			back := BrightnessTemperature(lambda, r)
			if math.Abs(back-temp)/temp > 1e-9 {
				t.Fatalf("inversion failed: lambda=%g T=%g -> r=%g -> T=%g", lambda, temp, r, back)
			}
		}
	}
}

func TestBrightnessTemperatureEdgeCases(t *testing.T) {
	if BrightnessTemperature(0, 1) != 0 {
		t.Error("lambda=0 should give 0")
	}
	if BrightnessTemperature(10e-6, 0) != 0 {
		t.Error("radiance=0 should give 0")
	}
	if BrightnessTemperature(10e-6, -5) != 0 {
		t.Error("negative radiance should give 0")
	}
}

func TestInversionPropertyQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		lambda := 8e-6 + float64(a%6000)*1e-9 // 8-14 um
		temp := 150 + float64(b%1350)         // 150-1500 K
		r := SpectralRadiance(lambda, temp)
		back := BrightnessTemperature(lambda, r)
		return math.Abs(back-temp) < 1e-6*temp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadianceBoundsOrdering(t *testing.T) {
	for _, lambda := range ThermalBands(16) {
		lo, hi := RadianceBounds(lambda)
		if !(lo > 0 && hi > lo) {
			t.Fatalf("bounds at %g: lo=%g hi=%g", lambda, lo, hi)
		}
		mid := SpectralRadiance(lambda, 300)
		if mid <= lo || mid >= hi {
			t.Fatalf("300K radiance %g outside bounds [%g,%g]", mid, lo, hi)
		}
	}
}

func TestThermalBands(t *testing.T) {
	if ThermalBands(0) != nil {
		t.Error("n=0 should give nil")
	}
	one := ThermalBands(1)
	if len(one) != 1 || one[0] < 8e-6 || one[0] > 14e-6 {
		t.Errorf("n=1: %v", one)
	}
	bands := ThermalBands(7)
	if len(bands) != 7 {
		t.Fatalf("len = %d", len(bands))
	}
	if bands[0] != 8e-6 || math.Abs(bands[6]-14e-6) > 1e-12 {
		t.Errorf("endpoints: %g %g", bands[0], bands[6])
	}
	for i := 1; i < len(bands); i++ {
		if bands[i] <= bands[i-1] {
			t.Fatal("bands not increasing")
		}
	}
}

func TestWienDisplacementSanity(t *testing.T) {
	// Peak of 300 K black body is near 9.66 um; radiance there should
	// exceed radiance at both window edges.
	peak := SpectralRadiance(9.66e-6, 300)
	if peak < SpectralRadiance(8e-6, 300) || peak < SpectralRadiance(14e-6, 300) {
		t.Fatal("Planck curve shape wrong: 9.66um should be near the 300K peak")
	}
}
