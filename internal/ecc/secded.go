// Package ecc implements SEC-DED (single-error-correct, double-error-
// detect) Hamming protection for 16-bit pixel words — the hardware memory
// redundancy the paper's introduction weighs against software schemes
// ("hardware and software redundancy schemes, of which the former is often
// prohibitively expensive").
//
// Each 16-bit word is stored as a 22-bit codeword (Hamming(21,16) plus an
// overall parity bit): 37.5% storage overhead. A single flipped bit per
// codeword is corrected exactly; two flips are detected but uncorrectable;
// three or more can silently alias. The comparison experiment against
// input preprocessing lives in the sweep package.
package ecc

import (
	"fmt"
	"math/bits"
)

// CodewordBits is the width of one protected word.
const CodewordBits = 22

// Overhead is the storage overhead of the code.
const Overhead = float64(CodewordBits-16) / 16

// Hamming bit layout: positions 1..21 (1-indexed), parity bits at powers
// of two (1, 2, 4, 8, 16), data bits at the remaining positions, plus an
// overall parity bit at position 0 of our packed representation.

// dataPositions lists the codeword positions (1-indexed) holding data
// bits, LSB-first.
var dataPositions = [16]int{3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 17, 18, 19, 20, 21}

// Encode packs a 16-bit word into a 22-bit SEC-DED codeword (stored in the
// low bits of a uint32).
func Encode(word uint16) uint32 {
	var cw uint32
	for i, pos := range dataPositions {
		if word&(1<<uint(i)) != 0 {
			cw |= 1 << uint(pos)
		}
	}
	// Parity bits: parity bit at position p covers positions with bit p
	// set in their index.
	for _, p := range []int{1, 2, 4, 8, 16} {
		var parity uint32
		for pos := 1; pos <= 21; pos++ {
			if pos&p != 0 && cw&(1<<uint(pos)) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			cw |= 1 << uint(p)
		}
	}
	// Overall parity at bit 0 makes the whole codeword even.
	if bits.OnesCount32(cw)%2 != 0 {
		cw |= 1
	}
	return cw
}

// Result classifies one decode.
type Result int

// Decode outcomes.
const (
	// OK: no error detected.
	OK Result = iota
	// Corrected: a single-bit error was repaired.
	Corrected
	// Detected: a double-bit error was detected but not corrected.
	Detected
)

// String names the outcome.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Decode recovers the data word from a possibly damaged codeword.
func Decode(cw uint32) (uint16, Result) {
	cw &= 1<<CodewordBits - 1
	syndrome := 0
	for _, p := range []int{1, 2, 4, 8, 16} {
		var parity uint32
		for pos := 1; pos <= 21; pos++ {
			if pos&p != 0 && cw&(1<<uint(pos)) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			syndrome |= p
		}
	}
	overallEven := bits.OnesCount32(cw)%2 == 0

	res := OK
	switch {
	case syndrome == 0 && overallEven:
		// Clean (or an undetectable multi-bit alias).
	case syndrome != 0 && !overallEven:
		// Single-bit error at the syndrome position (1..21); correct it.
		if syndrome <= 21 {
			cw ^= 1 << uint(syndrome)
		}
		res = Corrected
	case syndrome == 0 && !overallEven:
		// The overall parity bit itself flipped.
		cw ^= 1
		res = Corrected
	default:
		// syndrome != 0 with even overall parity: double-bit error.
		res = Detected
	}

	var word uint16
	for i, pos := range dataPositions {
		if cw&(1<<uint(pos)) != 0 {
			word |= 1 << uint(i)
		}
	}
	return word, res
}

// Stats summarizes a protected-memory scrub.
type Stats struct {
	// Corrected counts single-bit repairs.
	Corrected int
	// Detected counts uncorrectable double-bit detections.
	Detected int
}

// EncodeWords protects a word slice.
func EncodeWords(words []uint16) []uint32 {
	out := make([]uint32, len(words))
	for i, w := range words {
		out[i] = Encode(w)
	}
	return out
}

// DecodeWords recovers a protected slice, accumulating statistics.
func DecodeWords(codewords []uint32) ([]uint16, Stats) {
	out := make([]uint16, len(codewords))
	var stats Stats
	for i, cw := range codewords {
		w, res := Decode(cw)
		out[i] = w
		switch res {
		case Corrected:
			stats.Corrected++
		case Detected:
			stats.Detected++
		}
	}
	return out, stats
}
