// Command otissim runs the OTIS benchmark end to end: it synthesizes one
// of the three evaluation datasets (Blob, Stripe, Spots), injects memory
// bit flips into the radiance cube, optionally preprocesses the input, and
// runs the temperature/emissivity retrieval under the ALFT
// primary/secondary executor with acceptance filters, reporting the
// logic-grid decision and the science error against ground truth.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"spaceproc"
	"spaceproc/internal/cmdutil"
)

func main() {
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		spaceproc.NewStructuredLogger(os.Stderr, slog.LevelInfo).
			Error("run failed", "cmd", "otissim", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("otissim", flag.ContinueOnError)
	kindName := fs.String("dataset", "blob", "dataset morphology: blob, stripe or spots")
	gamma0 := fs.Float64("gamma0", 0.01, "memory bit-flip probability")
	lambda := fs.Int("sensitivity", 80, "preprocessing sensitivity Lambda")
	locality := fs.String("locality", "spatial", "voting locality: spatial or spectral")
	noPre := fs.Bool("no-preprocess", false, "disable input preprocessing")
	seed := fs.Uint64("seed", 1, "simulation seed")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		cmdutil.PrintVersion(out, "otissim")
		return nil
	}

	var kind spaceproc.OTISKind
	switch strings.ToLower(*kindName) {
	case "blob":
		kind = spaceproc.Blob
	case "stripe":
		kind = spaceproc.Stripe
	case "spots":
		kind = spaceproc.Spots
	default:
		return fmt.Errorf("unknown dataset %q", *kindName)
	}

	cfg := spaceproc.DefaultOTISSceneConfig(kind)
	fmt.Fprintf(out, "synthesizing OTIS %q: %dx%d FOV, %d bands...\n", kind, cfg.Width, cfg.Height, cfg.Bands)
	scene, err := spaceproc.NewOTISScene(cfg, spaceproc.NewRNG(*seed))
	if err != nil {
		return err
	}

	damaged := scene.Cube.Clone()
	flips := spaceproc.Uncorrelated{Gamma0: *gamma0}.InjectCube(damaged, spaceproc.NewRNGStream(*seed, 99))
	fmt.Fprintf(out, "injected %d bit flips at Gamma0 = %.4f (input Psi = %.4f)\n",
		flips, *gamma0, spaceproc.CubeError(damaged, scene.Cube))

	if !*noPre {
		ocfg := spaceproc.DefaultOTISConfig(scene.Wavelengths)
		ocfg.Sensitivity = *lambda
		switch strings.ToLower(*locality) {
		case "spatial":
			ocfg.Locality = spaceproc.SpatialLocality
		case "spectral":
			ocfg.Locality = spaceproc.SpectralLocality
		default:
			return fmt.Errorf("unknown locality %q", *locality)
		}
		pre, err := spaceproc.NewAlgoOTIS(ocfg)
		if err != nil {
			return err
		}
		pre.ProcessCube(damaged)
		fmt.Fprintf(out, "preprocessed with %s (input Psi now %.4f)\n",
			pre.Name(), spaceproc.CubeError(damaged, scene.Cube))
	} else {
		fmt.Fprintln(out, "preprocessing: disabled")
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	retr, err := spaceproc.NewOTISRetriever(spaceproc.DefaultOTISRetrievalConfig(scene.Wavelengths))
	if err != nil {
		return err
	}
	exec := &spaceproc.OTISALFT{
		Primary:   func(c *spaceproc.Cube) (*spaceproc.OTISOutput, error) { return retr.Process(c) },
		Secondary: func(c *spaceproc.Cube) (*spaceproc.OTISOutput, error) { return retr.Process(c) },
		Filters: []spaceproc.OTISFilter{
			spaceproc.TempBoundsFilter(0.97),
			spaceproc.EmissivityFilter(0.95),
			spaceproc.RoughnessFilter(cfg.Width, 5),
		},
	}
	result, rep, err := exec.Run(damaged)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ALFT decision: %s (primary rejections: %v)\n", rep.Choice, rep.PrimaryRejections)
	fmt.Fprintf(out, "temperature error vs ground truth: %.3f K\n", spaceproc.TempError(result.Temps, scene.Temps))
	return nil
}
