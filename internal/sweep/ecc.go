package sweep

import (
	"spaceproc/internal/core"
	"spaceproc/internal/dataset"
	"spaceproc/internal/ecc"
	"spaceproc/internal/fault"
	"spaceproc/internal/metrics"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

// AblationECC compares the paper's software approach against SEC-DED
// memory ECC — the hardware redundancy the introduction calls "often
// prohibitively expensive" — and against the two combined. ECC words are
// 37.5% larger, so at equal per-bit upset rates each protected word
// exposes 22 bits instead of 16; single flips per word are corrected
// exactly, multi-flips survive. Preprocessing costs no storage and keeps
// working in the multi-flip regime, but cannot touch window C.
func AblationECC(cfg NGSTConfig, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer traceExperiment(cfg.Telemetry, "ablation_ecc")()
	res := &Result{
		ID:     "ablation-ecc",
		Title:  "SEC-DED memory ECC vs input preprocessing (Psi vs Gamma0)",
		XLabel: "Gamma0",
		YLabel: "average relative error Psi",
	}
	pre, err := core.NewAlgoNGST(core.DefaultNGSTConfig())
	if err != nil {
		return nil, err
	}
	pre.Instrument(cfg.Telemetry)

	variants := []string{"NoProtection", "AlgoNGST", "SECDED(+37.5%mem)", "SECDED+AlgoNGST"}
	series := make([]Series, len(variants))
	for i, name := range variants {
		series[i] = Series{Name: name}
	}

	gammas := []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1}
	for _, g := range gammas {
		accs := make([]metrics.Accumulator, len(variants))
		for trial := 0; trial < cfg.Trials; trial++ {
			dataSrc := rng.NewStream(seed, uint64(trial)*2)
			faultSrc := rng.NewStream(seed, uint64(trial)*2+1)
			ideal, err := synth.GaussianSeries(synth.SeriesConfig{
				N: cfg.N, Initial: cfg.Initial, Sigma: cfg.Sigma,
			}, dataSrc)
			if err != nil {
				return nil, err
			}

			// Unprotected memory: flips hit the 16-bit words directly.
			plain := ideal.Clone()
			fault.Uncorrelated{Gamma0: g}.InjectSeries(plain, faultSrc.Split())
			accs[0].Add(metrics.SeriesError(plain, ideal))

			processed := plain.Clone()
			pre.ProcessSeries(processed)
			accs[1].Add(metrics.SeriesError(processed, ideal))

			// Protected memory: flips hit the 22-bit codewords.
			cws := ecc.EncodeWords(ideal)
			injectCodewords(cws, g, faultSrc.Split())
			decoded, _ := ecc.DecodeWords(cws)
			accs[2].Add(metrics.SeriesError(dataset.Series(decoded), ideal))

			both := dataset.Series(decoded).Clone()
			pre.ProcessSeries(both)
			accs[3].Add(metrics.SeriesError(both, ideal))
		}
		for i := range variants {
			series[i].Points = append(series[i].Points, Point{X: g, Y: accs[i].Mean()})
		}
	}
	res.Series = series
	return res, nil
}

// injectCodewords flips each of the low ecc.CodewordBits bits of every
// codeword independently with probability p.
func injectCodewords(cws []uint32, p float64, src *rng.Source) {
	for i := range cws {
		for b := 0; b < ecc.CodewordBits; b++ {
			if src.Bernoulli(p) {
				cws[i] ^= 1 << uint(b)
			}
		}
	}
}
