package adapt

import (
	"math"
	"testing"

	"spaceproc/internal/core"
	"spaceproc/internal/fault"
	"spaceproc/internal/metrics"
	"spaceproc/internal/rng"
	"spaceproc/internal/synth"
)

func TestOrbitValidate(t *testing.T) {
	if err := DefaultOrbit().Validate(); err != nil {
		t.Fatalf("default orbit invalid: %v", err)
	}
	bad := DefaultOrbit()
	bad.BaseRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative base rate should be invalid")
	}
	bad = DefaultOrbit()
	bad.SAAPeak = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("peak pushing rate above 1 should be invalid")
	}
	bad = DefaultOrbit()
	bad.SAAWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width should be invalid")
	}
	bad = DefaultOrbit()
	bad.SAACenter = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("center outside [0,1) should be invalid")
	}
}

func TestOrbitRateShape(t *testing.T) {
	o := DefaultOrbit()
	// Peak at the SAA center, near-quiet on the far side.
	peak := o.RateAt(o.SAACenter)
	if math.Abs(peak-(o.BaseRate+o.SAAPeak)) > 1e-9 {
		t.Fatalf("rate at SAA center = %v, want %v", peak, o.BaseRate+o.SAAPeak)
	}
	far := o.RateAt(o.SAACenter + 0.5)
	if far > o.BaseRate*1.05 {
		t.Fatalf("rate on the far side = %v, want ~base %v", far, o.BaseRate)
	}
	// Wrapping: phases outside [0,1) behave periodically.
	if math.Abs(o.RateAt(o.SAACenter+1)-peak) > 1e-9 {
		t.Fatal("rate not periodic in phase")
	}
	if math.Abs(o.RateAt(o.SAACenter-1)-peak) > 1e-9 {
		t.Fatal("rate not periodic for negative phase")
	}
}

func TestOrbitWrapAroundBump(t *testing.T) {
	o := Orbit{BaseRate: 0.001, SAAPeak: 0.05, SAACenter: 0.02, SAAWidth: 0.05}
	// Phase 0.98 is 0.04 away through the wrap, not 0.96.
	near := o.RateAt(0.98)
	if near < o.BaseRate+o.SAAPeak*0.5 {
		t.Fatalf("wrapped distance not used: rate(0.98) = %v", near)
	}
}

func quickCalibration(t *testing.T) *Calibration {
	t.Helper()
	cfg := DefaultCalibrationConfig()
	cfg.Trials = 8
	cfg.Rates = []float64{0.001, 0.01, 0.05}
	cfg.Lambdas = []int{40, 80, 100}
	cal, err := Calibrate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateProducesFullTable(t *testing.T) {
	cal := quickCalibration(t)
	if len(cal.Lambdas) != len(cal.Rates) {
		t.Fatalf("table size mismatch: %d lambdas, %d rates", len(cal.Lambdas), len(cal.Rates))
	}
	for i, l := range cal.Lambdas {
		if l < 40 || l > 100 {
			t.Fatalf("lambda[%d] = %d outside the candidate grid", i, l)
		}
	}
	// Optimal sensitivity should not decrease as the rate grows (the
	// fig-2 pattern); allow equal.
	for i := 1; i < len(cal.Lambdas); i++ {
		if cal.Lambdas[i] < cal.Lambdas[i-1] {
			t.Fatalf("calibrated lambda decreasing with rate: %v", cal.Lambdas)
		}
	}
}

func TestCalibrateValidation(t *testing.T) {
	bad := DefaultCalibrationConfig()
	bad.Trials = 0
	if _, err := Calibrate(bad, 1); err == nil {
		t.Error("zero trials should be invalid")
	}
	bad = DefaultCalibrationConfig()
	bad.Rates = []float64{0.01, 0.001}
	if _, err := Calibrate(bad, 1); err == nil {
		t.Error("non-ascending rates should be invalid")
	}
	bad = DefaultCalibrationConfig()
	bad.Lambdas = nil
	if _, err := Calibrate(bad, 1); err == nil {
		t.Error("empty lambda grid should be invalid")
	}
}

func TestPick(t *testing.T) {
	cal := &Calibration{Rates: []float64{0.001, 0.01, 0.1}, Lambdas: []int{40, 80, 100}}
	tests := []struct {
		rate float64
		want int
	}{
		{0.0001, 40}, // below the grid
		{0.001, 40},
		{0.003, 40}, // log-nearest to 0.001 (0.003 is closer to 0.001 than 0.01 in log space? log10: -2.52 vs -3 and -2 -> nearest -2.52+3=0.48 vs 0.52 -> 0.001)
		{0.004, 80}, // log-nearest to 0.01
		{0.05, 100}, // log-nearest to 0.1
		{1.0, 100},  // above the grid
		{0, 40},     // degenerate rate
	}
	for _, tt := range tests {
		if got := cal.Pick(tt.rate); got != tt.want {
			t.Errorf("Pick(%v) = %d, want %d", tt.rate, got, tt.want)
		}
	}
	empty := &Calibration{}
	if got := empty.Pick(0.01); got != 80 {
		t.Errorf("empty calibration Pick = %d, want default 80", got)
	}
}

func TestAdaptiveBeatsFixedAcrossOrbit(t *testing.T) {
	// The headline of the extension: over a full orbit with quiet phases
	// and SAA passes, the controller's per-phase Lambda must not lose to
	// any single fixed Lambda.
	cal := quickCalibration(t)
	orbit := DefaultOrbit()
	ctrl := &Controller{Orbit: orbit, Calibration: cal}

	phases := []float64{0, 0.1, 0.2, 0.3, 0.35, 0.4, 0.5, 0.7, 0.9}
	run := func(pick func(phase float64) int) float64 {
		var acc metrics.Accumulator
		for pi, phase := range phases {
			a, err := core.NewAlgoNGST(core.NGSTConfig{Upsilon: 4, Sensitivity: pick(phase)})
			if err != nil {
				t.Fatal(err)
			}
			injector := fault.Uncorrelated{Gamma0: orbit.RateAt(phase)}
			for trial := 0; trial < 10; trial++ {
				dataSrc := rng.NewStream(7, uint64(pi*100+trial)*2)
				faultSrc := rng.NewStream(7, uint64(pi*100+trial)*2+1)
				ideal, err := synth.GaussianSeries(synth.SeriesConfig{N: 64, Initial: 27000, Sigma: 250}, dataSrc)
				if err != nil {
					t.Fatal(err)
				}
				damaged := ideal.Clone()
				injector.InjectSeries(damaged, faultSrc)
				a.ProcessSeries(damaged)
				acc.Add(metrics.SeriesError(damaged, ideal))
			}
		}
		return acc.Mean()
	}
	adaptive := run(ctrl.SensitivityAt)
	fixed40 := run(func(float64) int { return 40 })
	fixed100 := run(func(float64) int { return 100 })
	if adaptive > fixed40*1.02 && adaptive > fixed100*1.02 {
		t.Fatalf("adaptive (%.6g) lost to both fixed-40 (%.6g) and fixed-100 (%.6g)",
			adaptive, fixed40, fixed100)
	}
}
