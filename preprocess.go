package spaceproc

import (
	"spaceproc/internal/core"
	"spaceproc/internal/dataset"
	"spaceproc/internal/metrics"
)

// Preprocessing algorithms (the paper's contribution; internal/core).
type (
	// SeriesPreprocessor repairs suspected bit flips in a temporal pixel
	// series in place.
	SeriesPreprocessor = core.SeriesPreprocessor
	// CubePreprocessor repairs suspected bit flips in a radiance cube in
	// place.
	CubePreprocessor = core.CubePreprocessor
	// NGSTConfig parameterizes AlgoNGST (Upsilon neighbors, sensitivity
	// Lambda).
	NGSTConfig = core.NGSTConfig
	// OTISConfig parameterizes AlgoOTIS (sensitivity, physical bounds,
	// trend guard).
	OTISConfig = core.OTISConfig
	// AlgoNGST is the paper's Algorithm 1.
	AlgoNGST = core.AlgoNGST
	// AlgoOTIS is the Section 7.2 spatial adaptation.
	AlgoOTIS = core.AlgoOTIS
	// Median3 is Algorithm 2 (window-3 median smoothing).
	Median3 = core.Median3
	// MajorityBit3 is Algorithm 3 (window-3 bitwise majority voting).
	MajorityBit3 = core.MajorityBit3
	// CubeMedian3 is the OTIS adaptation of Algorithm 2.
	CubeMedian3 = core.CubeMedian3
	// CubeMajorityBit3 is the OTIS adaptation of Algorithm 3.
	CubeMajorityBit3 = core.CubeMajorityBit3
	// OTISLocality selects AlgoOTIS's redundancy dimension.
	OTISLocality = core.OTISLocality
	// VoteStats carries preprocessing telemetry (corrections by window,
	// guard rejections).
	VoteStats = core.VoteStats
	// VoteScratch holds the reusable buffers of the allocation-free
	// per-series preprocessing path (see ScratchPreprocessor).
	VoteScratch = core.VoteScratch
	// CubeScratch holds the reusable buffers of a cube preprocessing pass.
	CubeScratch = core.CubeScratch
	// ScratchPreprocessor is a SeriesPreprocessor whose pass can run
	// allocation-free against caller-owned scratch (AlgoNGST, Median3 and
	// MajorityBit3 all qualify).
	ScratchPreprocessor = core.ScratchPreprocessor
	// PlanePreprocessor is a ScratchPreprocessor that can additionally run
	// a plane-major (bit-sliced) pass over a flattened pixel range of a
	// stack, one uint64 word voting 64 pixels at a time. ProcessStackWith
	// and the cluster workers prefer this path whenever the stack depth
	// qualifies; set NGSTConfig.ScalarOnly (or OTISConfig.ScalarOnly for
	// cubes) to pin the classic scalar kernels instead.
	PlanePreprocessor = core.PlanePreprocessor
	// PlaneStack is the plane-major (bit-sliced) view of a stack window:
	// bit b of up to 64 pixel series packs into one uint64 word per
	// readout, the layout the plane kernels vote on.
	PlaneStack = dataset.PlaneStack
)

// Locality models for AlgoOTIS (Section 7.1: spatial is recommended).
const (
	SpatialLocality  = core.SpatialLocality
	SpectralLocality = core.SpectralLocality
)

// DefaultNGSTConfig returns the paper's experimentally optimal parameters
// (Upsilon = 4, Lambda = 80).
func DefaultNGSTConfig() NGSTConfig { return core.DefaultNGSTConfig() }

// NewAlgoNGST validates cfg and returns Algorithm 1.
func NewAlgoNGST(cfg NGSTConfig) (*AlgoNGST, error) { return core.NewAlgoNGST(cfg) }

// DefaultOTISConfig returns AlgoOTIS defaults with physical bounds at the
// given band wavelengths (meters).
func DefaultOTISConfig(wavelengths []float64) OTISConfig { return core.DefaultOTISConfig(wavelengths) }

// NewAlgoOTIS validates cfg and returns the Section 7.2 algorithm.
func NewAlgoOTIS(cfg OTISConfig) (*AlgoOTIS, error) { return core.NewAlgoOTIS(cfg) }

// NewVoteScratch returns an empty scratch for the allocation-free series
// preprocessing path (ProcessSeriesScratch). Not safe for concurrent use;
// hold one per goroutine.
func NewVoteScratch() *VoteScratch { return core.NewVoteScratch() }

// NewCubeScratch returns an empty scratch for repeated AlgoOTIS cube
// passes (ProcessCubeScratch).
func NewCubeScratch() *CubeScratch { return core.NewCubeScratch() }

// ProcessStackWith runs a series preprocessor over every coordinate of a
// baseline stack in place, through the plane-major stack kernel when p
// implements PlanePreprocessor and the stack depth qualifies.
func ProcessStackWith(p SeriesPreprocessor, s *Stack) { core.ProcessStackWith(p, s) }

// NewPlaneStack allocates a plane-major block holding pixels series of
// depth readouts at width significant bits. Most callers never build one
// directly — the plane kernels stage through scratch-held blocks — but
// the representation is exported for tools and tests that want to
// inspect or construct bit-sliced data.
func NewPlaneStack(depth, width, pixels int) (*PlaneStack, error) {
	return dataset.NewPlaneStack(depth, width, pixels)
}

// FromStack transposes an entire stack into a fresh 16-bit plane-major
// block (PlaneStack.ToStack inverts it).
func FromStack(s *Stack) (*PlaneStack, error) { return dataset.FromStack(s) }

// Evaluation metrics (eqs. 3-4).

// SeriesError computes the average relative error Psi between an observed
// and ideal series.
func SeriesError(observed, ideal Series) float64 { return metrics.SeriesError(observed, ideal) }

// StackError computes Psi across all readouts of a baseline.
func StackError(observed, ideal *Stack) float64 { return metrics.StackError(observed, ideal) }

// CubeError computes Psi across all samples of a radiance cube, with each
// sample's contribution capped at "completely wrong" (see
// metrics.MaxSampleError).
func CubeError(observed, ideal *Cube) float64 { return metrics.CubeError(observed, ideal) }

// Gain is Psi-without-preprocessing over Psi-after; values below 1 mark
// the breakdown regime of Figure 9.
func Gain(psiNo, psiAfter float64) float64 { return metrics.Gain(psiNo, psiAfter) }
