// OTIS thermal example: synthesize the three Section 7.3 evaluation
// datasets (Blob, Stripe, Spots), damage each radiance cube with memory
// bit flips, and compare the retrieved temperature maps with and without
// input preprocessing — including the natural-anomaly preservation that
// distinguishes Algo_OTIS from blind smoothing.
//
//	go run ./examples/otis_thermal
package main

import (
	"fmt"
	"log"

	"spaceproc"
)

func main() {
	for _, kind := range []spaceproc.OTISKind{spaceproc.Blob, spaceproc.Stripe, spaceproc.Spots} {
		demo(kind)
	}
}

func demo(kind spaceproc.OTISKind) {
	cfg := spaceproc.DefaultOTISSceneConfig(kind)
	scene, err := spaceproc.NewOTISScene(cfg, spaceproc.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	retr, err := spaceproc.NewOTISRetriever(spaceproc.DefaultOTISRetrievalConfig(scene.Wavelengths))
	if err != nil {
		log.Fatal(err)
	}

	// Flip bits in the radiance cube while it sits in memory. Unlike the
	// NGST benchmark there is no multiple imaging: every corrupted
	// sample propagates straight into the science products.
	damaged := scene.Cube.Clone()
	spaceproc.Uncorrelated{Gamma0: 0.01}.InjectCube(damaged, spaceproc.NewRNG(12))

	rawOut, err := retr.Process(damaged.Clone())
	if err != nil {
		log.Fatal(err)
	}

	// Algo_OTIS: absolute physical bounds (a radiance no Earth scene can
	// emit is a fault), spatial bit-plane voting with per-region dynamic
	// thresholds, and trend preservation for genuine thermal anomalies.
	pre, err := spaceproc.NewAlgoOTIS(spaceproc.DefaultOTISConfig(scene.Wavelengths))
	if err != nil {
		log.Fatal(err)
	}
	cleaned := damaged.Clone()
	pre.ProcessCube(cleaned)
	preOut, err := retr.Process(cleaned)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s | input Psi %.4f -> %.4f | temp error %7.3f K -> %6.3f K\n",
		kind,
		spaceproc.CubeError(damaged, scene.Cube),
		spaceproc.CubeError(cleaned, scene.Cube),
		spaceproc.TempError(rawOut.Temps, scene.Temps),
		spaceproc.TempError(preOut.Temps, scene.Temps))
}
