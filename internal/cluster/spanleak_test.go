package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"spaceproc/internal/core"
	"spaceproc/internal/crreject"
	"spaceproc/internal/dataset"
	"spaceproc/internal/telemetry"
)

// tracerStages collects the set of stages with at least one recorded trace
// event.
func tracerStages(tr *telemetry.Tracer) map[string]int {
	stages := make(map[string]int)
	for _, ev := range tr.Events() {
		stages[ev.Stage]++
	}
	return stages
}

// TestRunSpansEndOnFragmentError is the span-leak regression test: a run
// that dies in dataset.Fragment must still record its run and fragment
// spans (an unended TraceSpan is never recorded, so before the fix the
// trace silently lost the whole run).
func TestRunSpansEndOnFragmentError(t *testing.T) {
	sc := testScene(t, 31)
	reg := telemetry.NewRegistry()
	// 64x64 does not divide by 5 tiles -> Fragment fails.
	m, err := NewMaster(localWorkers(t, 1, nil), WithTileSize(5), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(sc.Observed); !errors.Is(err, dataset.ErrBadGeometry) {
		t.Fatalf("want ErrBadGeometry, got %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.SpanCounts[StageRun]; got != 1 {
		t.Fatalf("run spans recorded = %d, want 1 (leaked on the Fragment error path)", got)
	}
	if got := snap.SpanCounts[StageFragment]; got != 1 {
		t.Fatalf("fragment spans recorded = %d, want 1", got)
	}
	if got := snap.Histograms["pipeline_run"].Count; got != 1 {
		t.Fatalf("pipeline_run histogram count = %d, want 1", got)
	}
	stages := tracerStages(reg.Tracer())
	if stages[StageRun] != 1 || stages[StageFragment] != 1 {
		t.Fatalf("trace events missing run/fragment stages: %v", stages)
	}
	// The export the leak used to corrupt must be valid JSON.
	var buf bytes.Buffer
	if err := reg.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteChrome emitted invalid JSON: %s", buf.Bytes())
	}
}

// TestRunSpansEndOnCancelledRun covers the other leaked exit path: a run
// abandoned through ctx cancellation must still record its run span and
// trace event.
func TestRunSpansEndOnCancelledRun(t *testing.T) {
	sc := testScene(t, 32)
	reg := telemetry.NewRegistry()
	m, err := NewMaster(localWorkers(t, 2, nil), WithTileSize(32), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no tile is ever dispatched
	if _, err := m.RunContext(ctx, sc.Observed); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.SpanCounts[StageRun]; got != 1 {
		t.Fatalf("run spans recorded = %d, want 1 (leaked on the cancellation path)", got)
	}
	if got := snap.Histograms["pipeline_run"].Count; got != 1 {
		t.Fatalf("pipeline_run histogram count = %d, want 1", got)
	}
	if stages := tracerStages(reg.Tracer()); stages[StageRun] != 1 {
		t.Fatalf("trace events missing the run stage: %v", stages)
	}
	var buf bytes.Buffer
	if err := reg.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteChrome emitted invalid JSON: %s", buf.Bytes())
	}
}

// TestLocalWorkerShardsMatchSequential checks that the sharded scratch path
// produces the exact image and correction counters of the classic
// one-goroutine worker.
func TestLocalWorkerShardsMatchSequential(t *testing.T) {
	// Force a multi-shard configuration even on single-CPU machines so the
	// parallel branch of processSharded actually runs (and runs under the
	// race detector).
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	sc := testScene(t, 33)
	pre, err := core.NewAlgoNGST(core.DefaultNGSTConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewLocalWorker(pre, crreject.DefaultConfig(), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewLocalWorker(pre, crreject.DefaultConfig(), WithShards(0)) // auto
	if err != nil {
		t.Fatal(err)
	}
	if got, max := par.Shards(), runtime.GOMAXPROCS(0); got != max {
		t.Fatalf("WithShards(0) resolved to %d, want GOMAXPROCS=%d", got, max)
	}
	tiles, err := dataset.Fragment(sc.Observed, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range tiles {
		a, err := seq.ProcessTile(context.Background(), cloneTile(tile))
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.ProcessTile(context.Background(), cloneTile(tile))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Image.Pix {
			if a.Image.Pix[i] != b.Image.Pix[i] {
				t.Fatalf("tile %d: sharded image differs at %d", tile.Index, i)
			}
		}
		// WindowCBit is a most-recent gauge, so only the summed counters are
		// shard-order independent.
		if a.PreStats.Series != b.PreStats.Series ||
			a.PreStats.Corrected != b.PreStats.Corrected ||
			a.PreStats.BitsWindowA != b.PreStats.BitsWindowA ||
			a.PreStats.BitsWindowB != b.PreStats.BitsWindowB ||
			a.PreStats.GuardRejected != b.PreStats.GuardRejected {
			t.Fatalf("tile %d: sharded stats %+v != sequential %+v", tile.Index, b.PreStats, a.PreStats)
		}
	}
}

// TestWithShardsClamped checks the shard knob's bounds: negative and
// oversized values resolve into [1, GOMAXPROCS].
func TestWithShardsClamped(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	for _, n := range []int{-3, 0, 1, max, max + 7} {
		w, err := NewLocalWorker(nil, crreject.DefaultConfig(), WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		got := w.Shards()
		if got < 1 || got > max {
			t.Fatalf("WithShards(%d) resolved to %d, outside [1,%d]", n, got, max)
		}
		if n >= 1 && n <= max && got != n {
			t.Fatalf("WithShards(%d) resolved to %d, want exact", n, got)
		}
	}
}

// TestLocalWorkerPlaneShardsMatchScalar is the plane-times-shard
// composition gate: the word-aligned sharded plane-major path must
// reproduce the sequential scalar per-series pass bit for bit for every
// plane-capable preprocessor, including shard counts that split the word
// range unevenly.
func TestLocalWorkerPlaneShardsMatchScalar(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	scene := testScene(t, 77)
	scalarCfg := core.DefaultNGSTConfig()
	scalarCfg.ScalarOnly = true
	ngstScalar, err := core.NewAlgoNGST(scalarCfg)
	if err != nil {
		t.Fatal(err)
	}
	ngstPlane, err := core.NewAlgoNGST(core.DefaultNGSTConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name          string
		scalar, plane core.ScratchPreprocessor
	}{
		{"ngst", ngstScalar, ngstPlane},
		{"median3", core.Median3{}, core.Median3{}},
		{"majoritybit3", core.MajorityBit3{}, core.MajorityBit3{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// 3 shards over the 64x64 scene's 64 words: the split is uneven
			// (22+22+20 words) and the final shard ends off a shard-count
			// multiple, exercising the clamped tail range.
			w, err := NewLocalWorker(tc.plane, crreject.DefaultConfig(), WithShards(3))
			if err != nil {
				t.Fatal(err)
			}
			got := scene.Observed.Clone()
			var gotStats core.VoteStats
			if err := w.processSharded(context.Background(), tc.plane, got, &gotStats); err != nil {
				t.Fatal(err)
			}
			want := scene.Observed.Clone()
			var wantStats core.VoteStats
			var ser dataset.Series
			for y := 0; y < want.Height(); y++ {
				for x := 0; x < want.Width(); x++ {
					ser = want.SeriesAtBuf(x, y, ser)
					tc.scalar.ProcessSeriesScratch(ser, nil, &wantStats)
					want.SetSeriesAt(x, y, ser)
				}
			}
			for f := range want.Frames {
				for i := range want.Frames[f].Pix {
					if want.Frames[f].Pix[i] != got.Frames[f].Pix[i] {
						t.Fatalf("frame %d pixel %d: scalar %04x sharded-plane %04x",
							f, i, want.Frames[f].Pix[i], got.Frames[f].Pix[i])
					}
				}
			}
			// WindowCBit is a most-recent gauge, so only the summed counters
			// are shard-order independent.
			if wantStats.Series != gotStats.Series ||
				wantStats.Corrected != gotStats.Corrected ||
				wantStats.BitsWindowA != gotStats.BitsWindowA ||
				wantStats.BitsWindowB != gotStats.BitsWindowB ||
				wantStats.GuardRejected != gotStats.GuardRejected {
				t.Fatalf("stats scalar %+v sharded-plane %+v", wantStats, gotStats)
			}
		})
	}
}
