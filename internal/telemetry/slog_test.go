package telemetry

import (
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestLogHandlerStampsTraceFromContext(t *testing.T) {
	var buf strings.Builder
	logger := NewLogger(&buf, slog.LevelInfo)

	tc := TraceContext{TraceID: 0xabc, SpanID: 0xdef}
	ctx := ContextWithTrace(context.Background(), nil, tc)
	logger.InfoContext(ctx, "tile retry", "tile", 3)

	line := buf.String()
	if !strings.Contains(line, "trace_id=0000000000000abc") {
		t.Fatalf("trace_id not stamped: %s", line)
	}
	if !strings.Contains(line, "span_id=0000000000000def") {
		t.Fatalf("span_id not stamped: %s", line)
	}
	if !strings.Contains(line, "tile=3") {
		t.Fatalf("caller attrs lost: %s", line)
	}
}

func TestLogHandlerPlainContext(t *testing.T) {
	var buf strings.Builder
	logger := NewLogger(&buf, slog.LevelInfo)
	logger.Info("no trace here")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced record gained a trace_id: %s", buf.String())
	}
}

func TestLogHandlerLevelGate(t *testing.T) {
	var buf strings.Builder
	logger := NewLogger(&buf, slog.LevelWarn)
	logger.Info("filtered")
	if buf.Len() != 0 {
		t.Fatalf("INFO leaked through WARN gate: %s", buf.String())
	}
	logger.Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatal("WARN dropped")
	}
}

func TestLogHandlerWithAttrsAndGroupKeepStamping(t *testing.T) {
	var buf strings.Builder
	logger := NewLogger(&buf, slog.LevelInfo).With("stage", "dispatch").WithGroup("tile")

	ctx := ContextWithTrace(context.Background(), nil, TraceContext{TraceID: 5, SpanID: 6})
	logger.InfoContext(ctx, "queued", "index", 1)

	line := buf.String()
	for _, want := range []string{"stage=dispatch", "tile.index=1", "trace_id="} {
		if !strings.Contains(line, want) {
			t.Fatalf("missing %q in %s", want, line)
		}
	}
}

func TestStageLogger(t *testing.T) {
	if StageLogger(nil, "process") != nil {
		t.Fatal("nil logger should stay nil")
	}
	var buf strings.Builder
	StageLogger(NewLogger(&buf, slog.LevelInfo), "process").Info("x")
	if !strings.Contains(buf.String(), "stage=process") {
		t.Fatalf("stage not pinned: %s", buf.String())
	}
}
