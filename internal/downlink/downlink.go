// Package downlink schedules compressed science products into
// bandwidth-limited ground-station passes. The paper's Figure 1 pipeline
// exists because "due to the limited downlink bandwidth constraints, this
// processing has to be done onboard"; this package models the other side
// of that constraint: once baselines are integrated and Rice-compressed,
// which products fly on which pass?
//
// The policy is greedy by effective priority (declared priority plus an
// aging bonus so low-priority products cannot starve), first-fit within
// the pass budget.
package downlink

import (
	"errors"
	"fmt"
	"sort"
)

// Product is one compressed science product awaiting downlink.
type Product struct {
	// ID names the product (e.g. "baseline_0042").
	ID string
	// Bytes is the compressed payload size.
	Bytes int
	// Priority is the declared importance; higher flies earlier.
	Priority int

	// age counts passes the product has waited; managed by the scheduler.
	age int
}

// AgeBonus is the effective-priority increase per pass waited.
const AgeBonus = 1

// Scheduler holds the downlink queue.
type Scheduler struct {
	queue []Product
	ids   map[string]bool
}

// NewScheduler returns an empty queue.
func NewScheduler() *Scheduler {
	return &Scheduler{ids: make(map[string]bool)}
}

// Errors.
var (
	// ErrDuplicateID rejects a product whose ID is already queued.
	ErrDuplicateID = errors.New("downlink: duplicate product id")
	// ErrBadProduct rejects empty or nonsensical products.
	ErrBadProduct = errors.New("downlink: invalid product")
)

// Enqueue adds a product to the queue.
func (s *Scheduler) Enqueue(p Product) error {
	if p.ID == "" || p.Bytes <= 0 {
		return fmt.Errorf("%w: id %q, %d bytes", ErrBadProduct, p.ID, p.Bytes)
	}
	if s.ids[p.ID] {
		return fmt.Errorf("%w: %s", ErrDuplicateID, p.ID)
	}
	p.age = 0
	s.queue = append(s.queue, p)
	s.ids[p.ID] = true
	return nil
}

// Pending returns the number of queued products.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Pass is the outcome of one ground-station pass.
type Pass struct {
	// Sent lists the downlinked products in transmission order.
	Sent []Product
	// SentBytes is the total payload transmitted.
	SentBytes int
	// Deferred counts products left in the queue.
	Deferred int
	// Utilization is SentBytes over the pass budget (0 when budget 0).
	Utilization float64
}

// effectivePriority is the aging-adjusted priority.
func effectivePriority(p Product) int { return p.Priority + p.age*AgeBonus }

// Plan selects products for a pass with the given byte budget, removes
// them from the queue, and ages the rest. Selection is greedy: highest
// effective priority first (ties: older first, then smaller first, then
// lexical ID for determinism), taking every product that still fits.
func (s *Scheduler) Plan(budgetBytes int) Pass {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	order := make([]int, len(s.queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := s.queue[order[a]], s.queue[order[b]]
		ea, eb := effectivePriority(pa), effectivePriority(pb)
		if ea != eb {
			return ea > eb
		}
		if pa.age != pb.age {
			return pa.age > pb.age
		}
		if pa.Bytes != pb.Bytes {
			return pa.Bytes < pb.Bytes
		}
		return pa.ID < pb.ID
	})

	var pass Pass
	taken := make(map[int]bool)
	remaining := budgetBytes
	for _, idx := range order {
		p := s.queue[idx]
		if p.Bytes > remaining {
			continue
		}
		remaining -= p.Bytes
		pass.Sent = append(pass.Sent, p)
		pass.SentBytes += p.Bytes
		taken[idx] = true
	}

	var rest []Product
	for i, p := range s.queue {
		if taken[i] {
			delete(s.ids, p.ID)
			continue
		}
		p.age++
		rest = append(rest, p)
	}
	s.queue = rest
	pass.Deferred = len(rest)
	if budgetBytes > 0 {
		pass.Utilization = float64(pass.SentBytes) / float64(budgetBytes)
	}
	return pass
}
