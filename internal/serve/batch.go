package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spaceproc/internal/cluster"
	"spaceproc/internal/dataset"
	"spaceproc/internal/telemetry"
)

// batcher coalesces admitted requests into batches before handing them to
// the pool: a batch flushes when it reaches max members or when its oldest
// member has waited window, whichever comes first. Submitting a batch as
// one wave enqueues its tiles contiguously onto the shared queue, so the
// pool's workers sweep through them without interleaving half-started
// baselines, and the submission backpressure (Pool.Submit blocks when the
// queue is full) is paid once per wave instead of once per request.
//
// With max <= 1 or window <= 0 the batcher degenerates to a pass-through.
// During drain the server flips bypass so no request waits on a timer that
// shutdown is racing against.
type batcher struct {
	backend Backend
	max     int
	window  time.Duration

	batches   *telemetry.Counter   // nil without telemetry
	batchSize *telemetry.Gauge     // members in the last flushed batch
	batchWait *telemetry.Histogram // per-member wait for its batch

	bypass atomic.Bool

	mu      sync.Mutex
	pending []*batchItem
	timer   *time.Timer
}

// batchItem is one admitted request waiting for its batch.
type batchItem struct {
	ctx      context.Context
	stack    *dataset.Stack
	enqueued time.Time
	out      chan *cluster.Result
}

// BatchStats reports, per request, what the batcher did with it: how long
// it waited for its batch and how many members flushed together. A
// transport that wants them (for the access log and the slow-request
// ring) installs a carrier with withBatchStats before Submit; the batcher
// fills it at flush time, which happens-before the result delivery the
// transport blocks on.
type BatchStats struct {
	QueueWait time.Duration
	BatchSize int
}

type batchStatsKey struct{}

// withBatchStats attaches a BatchStats carrier to ctx and returns it.
func withBatchStats(ctx context.Context) (context.Context, *BatchStats) {
	bs := &BatchStats{}
	return context.WithValue(ctx, batchStatsKey{}, bs), bs
}

// batchStatsFrom recovers the carrier, or nil.
func batchStatsFrom(ctx context.Context) *BatchStats {
	bs, _ := ctx.Value(batchStatsKey{}).(*BatchStats)
	return bs
}

func newBatcher(backend Backend, max int, window time.Duration, tel *telemetry.Registry, prefix string) *batcher {
	b := &batcher{backend: backend, max: max, window: window}
	if tel != nil {
		b.batches = tel.Counter(prefix + "_batches_total")
		b.batchSize = tel.Gauge(prefix + "_batch_size")
		b.batchWait = tel.Histogram(prefix + "_batch_wait")
	}
	return b
}

// submit queues the stack for the next batch and returns the channel that
// will deliver its pool result exactly once.
func (b *batcher) submit(ctx context.Context, s *dataset.Stack) <-chan *cluster.Result {
	it := &batchItem{ctx: ctx, stack: s, enqueued: time.Now(), out: make(chan *cluster.Result, 1)}
	if b.max <= 1 || b.window <= 0 || b.bypass.Load() {
		b.flush([]*batchItem{it})
		return it.out
	}
	b.mu.Lock()
	if b.bypass.Load() {
		// drain flipped bypass and flushed between the unlocked check
		// above and this lock; parking the item on a fresh window timer
		// here would make shutdown wait on it, so it goes straight out.
		b.mu.Unlock()
		b.flush([]*batchItem{it})
		return it.out
	}
	b.pending = append(b.pending, it)
	if len(b.pending) >= b.max {
		items := b.take()
		b.mu.Unlock()
		b.flush(items)
		return it.out
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.window, b.fire)
	}
	b.mu.Unlock()
	return it.out
}

// take detaches the pending batch and stops its timer. Callers hold b.mu.
func (b *batcher) take() []*batchItem {
	items := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return items
}

// fire is the window timer's flush path.
func (b *batcher) fire() {
	b.mu.Lock()
	items := b.take()
	b.mu.Unlock()
	if len(items) > 0 {
		b.flush(items)
	}
}

// drain flips the batcher to pass-through and flushes anything pending, so
// a shutdown never waits on the batch window.
func (b *batcher) drain() {
	b.bypass.Store(true)
	b.fire()
}

// flush submits one batch: every member's tiles enqueue as one wave (the
// Submit calls run back to back on this goroutine, paying queue
// backpressure for the whole wave), then per-member goroutines wait for
// the results so a slow baseline never blocks its batchmates' delivery.
//
// Traced members get two spans each: a queue_wait span covering
// enqueue-to-flush (recorded retrospectively, since the wait is only
// known now) and a batch span covering the backend execution, which the
// backend's own spans (the fleet's forward, the pool's run) parent
// under.
func (b *batcher) flush(items []*batchItem) {
	size := len(items)
	if b.batches != nil {
		b.batches.Inc()
		b.batchSize.Set(float64(size))
	}
	for _, it := range items {
		wait := time.Since(it.enqueued)
		if b.batchWait != nil {
			b.batchWait.Observe(wait)
		}
		if bs := batchStatsFrom(it.ctx); bs != nil {
			bs.QueueWait = wait
			bs.BatchSize = size
		}
		ctx := it.ctx
		var span *telemetry.TraceSpan
		if tc, ok := telemetry.TraceFromContext(ctx); ok {
			if tr := telemetry.TracerFromContext(ctx); tr != nil {
				tr.Record(telemetry.TraceEvent{
					TraceID:  tc.TraceID,
					SpanID:   telemetry.NewSpanID(),
					ParentID: tc.SpanID,
					Stage:    StageQueueWait,
					Start:    it.enqueued,
					Dur:      wait,
				})
				span = tr.StartSpan(tc, StageBatch, fmt.Sprintf("size_%d", size))
				ctx = telemetry.ContextWithTrace(ctx, tr, span.Context())
			}
		}
		ch := b.backend.Submit(ctx, it.stack)
		go func(it *batchItem, span *telemetry.TraceSpan, ch <-chan *cluster.Result) {
			res := <-ch
			span.End()
			it.out <- res
		}(it, span, ch)
	}
}
